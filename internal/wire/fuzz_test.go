package wire

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
	"unicode/utf8"

	"rad/internal/power"
	"rad/internal/store"
)

// FuzzReadFrame hardens the middlebox's untrusted input path: arbitrary
// bytes must never panic or allocate unboundedly — they may only produce an
// error or a valid request.
func FuzzReadFrame(f *testing.F) {
	// Seed corpus: a valid frame, a truncated frame, garbage, an oversized
	// header, and an empty input.
	var valid bytes.Buffer
	_ = WriteFrame(&valid, Request{ID: 1, Op: OpExec, Device: "C9", Name: "ARM", Args: []string{"1"}})
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())-3])
	f.Add([]byte("garbage"))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		_ = ReadFrame(bytes.NewReader(data), &req) // must not panic
	})
}

// FuzzFrameRoundTrip: any request that encodes must decode to itself.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint64(1), "C9", "ARM", "1|2|3", "ok", "")
	f.Add(uint64(0), "", "", "", "", "some error")
	f.Fuzz(func(t *testing.T, id uint64, dev, name, args, value, errStr string) {
		// encoding/json replaces invalid UTF-8 with U+FFFD by design; the
		// round-trip identity only holds for valid strings.
		for _, s := range []string{dev, name, args, value, errStr} {
			if !utf8.ValidString(s) {
				t.Skip()
			}
		}
		in := Request{ID: id, Op: OpExec, Device: dev, Name: name, Value: value, Error: errStr}
		if args != "" {
			in.Args = []string{args}
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, in); err != nil {
			t.Skip() // oversized inputs are rejected by design
		}
		var out Request
		if err := ReadFrame(&buf, &out); err != nil {
			t.Fatalf("decode of just-encoded frame: %v", err)
		}
		if out.ID != in.ID || out.Device != in.Device || out.Name != in.Name ||
			out.Value != in.Value || out.Error != in.Error {
			t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
		}
	})
}

// FuzzSubscribeFrame hardens the stream listener's untrusted input path: an
// arbitrary byte string decoded as a Subscribe frame must never panic, and
// whatever decodes must either fail Validate or be a well-formed
// subscription (recognised policy, non-negative buffer).
func FuzzSubscribeFrame(f *testing.F) {
	var valid bytes.Buffer
	_ = WriteFrame(&valid, Subscribe{Op: OpSubscribe, Name: "watch", Device: "UR3e",
		Snapshot: true, Policy: PolicyBlock, Buffer: 128})
	f.Add(valid.Bytes())
	var wrongOp bytes.Buffer
	_ = WriteFrame(&wrongOp, Subscribe{Op: "exec"})
	f.Add(wrongOp.Bytes())
	var badPolicy bytes.Buffer
	_ = WriteFrame(&badPolicy, Subscribe{Op: OpSubscribe, Policy: "bogus"})
	f.Add(badPolicy.Bytes())
	var negBuffer bytes.Buffer
	_ = WriteFrame(&negBuffer, Subscribe{Op: OpSubscribe, Buffer: -5})
	f.Add(negBuffer.Bytes())
	f.Add([]byte("garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var req Subscribe
		if err := ReadFrame(bytes.NewReader(data), &req); err != nil {
			return
		}
		if err := req.Validate(); err != nil {
			return
		}
		// Everything Validate accepts must be safe for the server to act on.
		if req.Op != OpSubscribe {
			t.Fatalf("validated subscribe with op %q", req.Op)
		}
		if req.Policy != "" && req.Policy != PolicyDropOldest && req.Policy != PolicyBlock {
			t.Fatalf("validated unknown policy %q", req.Policy)
		}
		if req.Buffer < 0 {
			t.Fatalf("validated negative buffer %d", req.Buffer)
		}
	})
}

// FuzzSubscribeResumeFrame hardens the exactly-once resume path end to end:
// a Subscribe carrying any ResumeFrom value must round-trip to exactly
// itself on both protocol versions (including the zero value, which older
// peers never emit and must decode as "no resume"), and arbitrary bytes
// decoded as a resume subscription must never panic — whatever decodes
// either fails Validate or is safe for the server to plan a replay from.
func FuzzSubscribeResumeFrame(f *testing.F) {
	f.Add(uint64(0), "watch", false, []byte{})
	f.Add(uint64(1), "resume", true, []byte("garbage"))
	f.Add(uint64(1)<<32, "", false, []byte{0x03, binSubscribe, subResume, 0xff})
	f.Add(^uint64(0), "max", true, []byte{0x02, binSubscribe, subResume})
	var v2valid bytes.Buffer
	_ = NewConn(&v2valid, V2, nil).WriteFrame(Subscribe{Op: OpSubscribe, Name: "w", ResumeFrom: 7})
	f.Add(uint64(7), "w", false, v2valid.Bytes())
	var v1valid bytes.Buffer
	_ = WriteFrame(&v1valid, Subscribe{Op: OpSubscribe, Name: "w", ResumeFrom: 7})
	f.Add(uint64(7), "w", true, v1valid.Bytes())

	f.Fuzz(func(t *testing.T, resumeFrom uint64, name string, snapshot bool, data []byte) {
		if !utf8.ValidString(name) {
			t.Skip() // the v1 JSON encoder rewrites invalid UTF-8
		}
		in := Subscribe{Op: OpSubscribe, Name: name, ResumeFrom: resumeFrom, Snapshot: snapshot}

		// Round trip on v1 (JSON, omitempty) and v2 (binary, zero-omitting
		// tag): the resume point must survive both encodings exactly.
		var v1buf bytes.Buffer
		if err := WriteFrame(&v1buf, in); err != nil {
			t.Skip() // oversized by construction
		}
		var v1out Subscribe
		if err := ReadFrame(&v1buf, &v1out); err != nil {
			t.Fatalf("v1 decode of just-encoded resume subscribe: %v", err)
		}
		if v1out.ResumeFrom != resumeFrom {
			t.Fatalf("v1 resume round trip: got %d want %d", v1out.ResumeFrom, resumeFrom)
		}
		payload, err := appendBinaryFrame(nil, &in)
		if err != nil {
			t.Fatalf("v2 encode: %v", err)
		}
		var v2out Subscribe
		if err := decodeBinaryFrame(payload, &v2out); err != nil {
			t.Fatalf("v2 decode of just-encoded resume subscribe: %v (payload % x)", err, payload)
		}
		if v2out.ResumeFrom != resumeFrom {
			t.Fatalf("v2 resume round trip: got %d want %d", v2out.ResumeFrom, resumeFrom)
		}

		// Hardening: arbitrary bytes on either version's reader must produce
		// a subscription or an error, never a panic; anything Validate
		// accepts must be a well-formed resume request.
		for _, decode := range []func(*Subscribe) error{
			func(s *Subscribe) error { return ReadFrame(bytes.NewReader(data), s) },
			func(s *Subscribe) error {
				return NewConn(bytes.NewBuffer(append([]byte(nil), data...)), V2, nil).ReadFrame(s)
			},
		} {
			var got Subscribe
			if err := decode(&got); err != nil {
				continue
			}
			if err := got.Validate(); err != nil {
				continue
			}
			if got.Op != OpSubscribe {
				t.Fatalf("validated resume subscribe with op %q", got.Op)
			}
			if got.Buffer < 0 {
				t.Fatalf("validated negative buffer %d", got.Buffer)
			}
		}
	})
}

// FuzzTraceContextFrame pins the trace-context propagation contract: the
// TraceID/SpanID pair on Request and Event must survive both encodings
// exactly (v1 JSON omitempty, v2 tagged uvarint pair omitted when zero),
// a zero pair must add zero bytes to the v2 frame — the wire must cost
// nothing for untraced peers — and arbitrary bytes on either reader must
// never panic.
func FuzzTraceContextFrame(f *testing.F) {
	f.Add(uint64(0), uint64(0), "C9", []byte{})
	f.Add(uint64(1), uint64(2), "ARM", []byte("garbage"))
	f.Add(^uint64(0), uint64(1)<<63, "", []byte{0x03, binRequest, reqTraceID, 0xff})
	f.Add(uint64(0x9e3779b97f4a7c15), uint64(7), "move_joints", []byte{0x02, binEvent, evSpanID})
	var v2valid bytes.Buffer
	_ = NewConn(&v2valid, V2, nil).WriteFrame(Request{ID: 1, Op: OpExec, TraceID: 5, SpanID: 6})
	f.Add(uint64(5), uint64(6), "w", v2valid.Bytes())
	var v1valid bytes.Buffer
	_ = WriteFrame(&v1valid, Event{Kind: EventTrace, TraceID: 5, SpanID: 6})
	f.Add(uint64(5), uint64(6), "e", v1valid.Bytes())

	f.Fuzz(func(t *testing.T, traceID, spanID uint64, name string, data []byte) {
		if !utf8.ValidString(name) {
			t.Skip() // the v1 JSON encoder rewrites invalid UTF-8
		}
		req := Request{ID: 1, Op: OpExec, Device: "C9", Name: name, TraceID: traceID, SpanID: spanID}
		ev := Event{Kind: EventTrace, TraceID: traceID, SpanID: spanID}

		var v1buf bytes.Buffer
		if err := WriteFrame(&v1buf, req); err != nil {
			t.Skip() // oversized by construction
		}
		var v1req Request
		if err := ReadFrame(&v1buf, &v1req); err != nil {
			t.Fatalf("v1 decode of just-encoded traced request: %v", err)
		}
		if v1req.TraceID != traceID || v1req.SpanID != spanID {
			t.Fatalf("v1 trace context round trip: got %x/%x want %x/%x",
				v1req.TraceID, v1req.SpanID, traceID, spanID)
		}

		for _, pair := range []struct {
			in  any
			out any
		}{{&req, new(Request)}, {&ev, new(Event)}} {
			payload, err := appendBinaryFrame(nil, pair.in)
			if err != nil {
				t.Fatalf("v2 encode %T: %v", pair.in, err)
			}
			if err := decodeBinaryFrame(payload, pair.out); err != nil {
				t.Fatalf("v2 decode of just-encoded %T: %v (payload % x)", pair.in, err, payload)
			}
		}

		// The zero pair must be free on the wire: an untraced frame encodes
		// to exactly the bytes it produced before tracing existed.
		if traceID != 0 || spanID != 0 {
			traced, _ := appendBinaryFrame(nil, &req)
			bare := req
			bare.TraceID, bare.SpanID = 0, 0
			untraced, _ := appendBinaryFrame(nil, &bare)
			if len(traced) <= len(untraced) {
				t.Fatalf("traced frame (%d bytes) not larger than untraced (%d)", len(traced), len(untraced))
			}
		}

		// Hardening: arbitrary bytes on either version's reader must produce
		// a frame or an error, never a panic.
		for _, dst := range []any{new(Request), new(Event)} {
			_ = ReadFrame(bytes.NewReader(data), dst)
			_ = NewConn(bytes.NewBuffer(append([]byte(nil), data...)), V2, nil).ReadFrame(dst)
		}
	})
}

// FuzzPooledFrameSequence hardens the buffer pooling: a long frame followed
// by shorter frames reuses the same pooled buffers, and every frame must
// still round-trip to exactly itself — no byte of one frame may leak into
// the next. A stale pooled-buffer length, a missed Reset, or a header
// patched at the wrong offset all fail this target.
func FuzzPooledFrameSequence(f *testing.F) {
	f.Add("C9", "a long argument string that forces buffer growth", "x", uint64(3))
	f.Add("", "", "", uint64(0))
	f.Add("Quantos", "αβγ", strings.Repeat("z", 2000), uint64(9))
	f.Fuzz(func(t *testing.T, dev, long, short string, id uint64) {
		if !utf8.ValidString(dev) || !utf8.ValidString(long) || !utf8.ValidString(short) {
			t.Skip()
		}
		// Alternate a large and a small frame several times through one
		// buffer so pooled encode and decode buffers get reused with
		// different prior contents.
		frames := []Request{
			{ID: id, Op: OpExec, Device: dev, Name: "ARM", Args: []string{long, long}},
			{ID: id + 1, Op: OpTrace, Device: dev, Name: "MVNG", Value: short},
			{ID: id + 2, Op: OpPing},
			{ID: id + 3, Op: OpExec, Device: dev, Name: "ARM", Value: long, Error: short},
			{ID: id + 4, Op: OpTrace, Name: short},
		}
		var buf bytes.Buffer
		for round := 0; round < 3; round++ {
			for i, in := range frames {
				buf.Reset()
				if err := WriteFrame(&buf, in); err != nil {
					t.Skip() // oversized inputs are rejected by design
				}
				var out Request
				if err := ReadFrame(&buf, &out); err != nil {
					t.Fatalf("round %d frame %d: decode: %v", round, i, err)
				}
				if !reflect.DeepEqual(out, in) {
					t.Fatalf("round %d frame %d: cross-frame leakage: got %+v want %+v",
						round, i, out, in)
				}
				if buf.Len() != 0 {
					t.Fatalf("round %d frame %d: %d trailing bytes after decode",
						round, i, buf.Len())
				}
			}
		}
	})
}

// FuzzBinaryFrameRoundTrip: every v2 frame type built from arbitrary
// primitives must decode back to exactly itself. Unlike the JSON fuzz above
// there is no UTF-8 skip — the binary codec carries arbitrary byte strings
// verbatim.
func FuzzBinaryFrameRoundTrip(f *testing.F) {
	f.Add(uint64(1), "C9", "ARM", "1|2", "ok", "", int64(100), true, uint64(0), 0.0)
	f.Add(uint64(0), "", "", "", "", "err", int64(-5), false, uint64(9), -1.5)
	f.Add(uint64(1<<63), "UR3e", "move_joints", "\xff\xfe", "π", "trace", int64(1633078800123456789), true, uint64(1<<40), 1e300)
	f.Fuzz(func(t *testing.T, id uint64, dev, name, arg, value, errStr string,
		nanos int64, flag bool, count uint64, val float64) {
		when := time.Unix(0, nanos).UTC()
		var args []string
		if arg != "" {
			args = []string{arg, arg}
		}
		frames := []any{
			&Request{ID: id, Op: OpExec, Device: dev, Name: name, Args: args,
				Value: value, Error: errStr, StartNanos: nanos, EndNanos: -nanos,
				Procedure: "P1", Run: value, TraceID: count, SpanID: id},
			&Reply{ID: id, Value: value, Error: errStr},
			&Subscribe{Op: OpSubscribe, Name: name, Device: dev, Key: value,
				Snapshot: flag, Power: !flag, Policy: PolicyDropOldest, Buffer: int(uint32(count))},
			&Event{Kind: EventTrace, Dropped: count, TraceID: count, SpanID: id,
				Record: &store.Record{
					Seq: id, Time: when, EndTime: when, Device: dev, Name: name,
					Args: args, Response: value, Exception: errStr, Mode: "REMOTE"}},
			&Event{Kind: EventPower, Sample: &power.Sample{Time: when, Values: []float64{val, -val, 0}}},
		}
		for _, in := range frames {
			payload, err := appendBinaryFrame(nil, in)
			if err != nil {
				t.Fatalf("encode %T: %v", in, err)
			}
			out := reflect.New(reflect.TypeOf(in).Elem()).Interface()
			if err := decodeBinaryFrame(payload, out); err != nil {
				t.Fatalf("decode of just-encoded %T: %v (payload % x)", in, err, payload)
			}
			if !reflect.DeepEqual(out, in) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", out, in)
			}
		}
	})
}

// FuzzBinaryReadFrame hardens the v2 listener path the way FuzzReadFrame
// hardens v1: arbitrary bytes through a v2 connection must produce a frame
// or an error, never a panic or an unbounded allocation (every announced
// length is validated against the bytes actually present).
func FuzzBinaryReadFrame(f *testing.F) {
	var valid bytes.Buffer
	vc := NewConn(&valid, V2, nil)
	_ = vc.WriteFrame(Request{ID: 1, Op: OpExec, Device: "C9", Name: "ARM", Args: []string{"1"}})
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())-2])
	f.Add([]byte{0x01, binRequest})
	f.Add([]byte{0x03, binRequest, reqArgs, 0xff}) // lying element count
	f.Add([]byte{0x00})                            // empty frame
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, dst := range []any{new(Request), new(Reply), new(Subscribe), new(Event)} {
			c := NewConn(bytes.NewBuffer(append([]byte(nil), data...)), V2, nil)
			_ = c.ReadFrame(dst) // must not panic
		}
	})
}

// FuzzCrossVersionFrame feeds each protocol's valid frames to the other
// protocol's reader: the mismatch must surface as a deterministic, clean
// error — v2 bytes look like an oversized v1 header, v1 bytes look like an
// empty v2 frame — never as a silent success or a panic.
func FuzzCrossVersionFrame(f *testing.F) {
	f.Add(uint64(1), "C9", "ARM", "ok")
	f.Add(uint64(0), "", "", "")
	f.Fuzz(func(t *testing.T, id uint64, dev, name, value string) {
		if !utf8.ValidString(dev) || !utf8.ValidString(name) || !utf8.ValidString(value) {
			t.Skip() // the v1 JSON encoder rewrites invalid UTF-8
		}
		req := Request{ID: id, Op: OpExec, Device: dev, Name: name, Value: value}

		var v2bytes bytes.Buffer
		if err := NewConn(&v2bytes, V2, nil).WriteFrame(req); err != nil {
			t.Skip() // oversized by construction
		}
		var got Request
		err := ReadFrame(bytes.NewReader(v2bytes.Bytes()), &got)
		if !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("v1 reader on v2 bytes: err = %v, want ErrFrameTooLarge", err)
		}

		var v1bytes bytes.Buffer
		if err := WriteFrame(&v1bytes, req); err != nil {
			t.Skip()
		}
		err = NewConn(bytes.NewBuffer(v1bytes.Bytes()), V2, nil).ReadFrame(&got)
		if err == nil {
			t.Fatal("v2 reader accepted v1 bytes")
		}
	})
}
