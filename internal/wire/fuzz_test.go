package wire

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzReadFrame hardens the middlebox's untrusted input path: arbitrary
// bytes must never panic or allocate unboundedly — they may only produce an
// error or a valid request.
func FuzzReadFrame(f *testing.F) {
	// Seed corpus: a valid frame, a truncated frame, garbage, an oversized
	// header, and an empty input.
	var valid bytes.Buffer
	_ = WriteFrame(&valid, Request{ID: 1, Op: OpExec, Device: "C9", Name: "ARM", Args: []string{"1"}})
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())-3])
	f.Add([]byte("garbage"))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		_ = ReadFrame(bytes.NewReader(data), &req) // must not panic
	})
}

// FuzzFrameRoundTrip: any request that encodes must decode to itself.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint64(1), "C9", "ARM", "1|2|3", "ok", "")
	f.Add(uint64(0), "", "", "", "", "some error")
	f.Fuzz(func(t *testing.T, id uint64, dev, name, args, value, errStr string) {
		// encoding/json replaces invalid UTF-8 with U+FFFD by design; the
		// round-trip identity only holds for valid strings.
		for _, s := range []string{dev, name, args, value, errStr} {
			if !utf8.ValidString(s) {
				t.Skip()
			}
		}
		in := Request{ID: id, Op: OpExec, Device: dev, Name: name, Value: value, Error: errStr}
		if args != "" {
			in.Args = []string{args}
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, in); err != nil {
			t.Skip() // oversized inputs are rejected by design
		}
		var out Request
		if err := ReadFrame(&buf, &out); err != nil {
			t.Fatalf("decode of just-encoded frame: %v", err)
		}
		if out.ID != in.ID || out.Device != in.Device || out.Name != in.Name ||
			out.Value != in.Value || out.Error != in.Error {
			t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
		}
	})
}

// FuzzSubscribeFrame hardens the stream listener's untrusted input path: an
// arbitrary byte string decoded as a Subscribe frame must never panic, and
// whatever decodes must either fail Validate or be a well-formed
// subscription (recognised policy, non-negative buffer).
func FuzzSubscribeFrame(f *testing.F) {
	var valid bytes.Buffer
	_ = WriteFrame(&valid, Subscribe{Op: OpSubscribe, Name: "watch", Device: "UR3e",
		Snapshot: true, Policy: PolicyBlock, Buffer: 128})
	f.Add(valid.Bytes())
	var wrongOp bytes.Buffer
	_ = WriteFrame(&wrongOp, Subscribe{Op: "exec"})
	f.Add(wrongOp.Bytes())
	var badPolicy bytes.Buffer
	_ = WriteFrame(&badPolicy, Subscribe{Op: OpSubscribe, Policy: "bogus"})
	f.Add(badPolicy.Bytes())
	var negBuffer bytes.Buffer
	_ = WriteFrame(&negBuffer, Subscribe{Op: OpSubscribe, Buffer: -5})
	f.Add(negBuffer.Bytes())
	f.Add([]byte("garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var req Subscribe
		if err := ReadFrame(bytes.NewReader(data), &req); err != nil {
			return
		}
		if err := req.Validate(); err != nil {
			return
		}
		// Everything Validate accepts must be safe for the server to act on.
		if req.Op != OpSubscribe {
			t.Fatalf("validated subscribe with op %q", req.Op)
		}
		if req.Policy != "" && req.Policy != PolicyDropOldest && req.Policy != PolicyBlock {
			t.Fatalf("validated unknown policy %q", req.Policy)
		}
		if req.Buffer < 0 {
			t.Fatalf("validated negative buffer %d", req.Buffer)
		}
	})
}

// FuzzPooledFrameSequence hardens the buffer pooling: a long frame followed
// by shorter frames reuses the same pooled buffers, and every frame must
// still round-trip to exactly itself — no byte of one frame may leak into
// the next. A stale pooled-buffer length, a missed Reset, or a header
// patched at the wrong offset all fail this target.
func FuzzPooledFrameSequence(f *testing.F) {
	f.Add("C9", "a long argument string that forces buffer growth", "x", uint64(3))
	f.Add("", "", "", uint64(0))
	f.Add("Quantos", "αβγ", strings.Repeat("z", 2000), uint64(9))
	f.Fuzz(func(t *testing.T, dev, long, short string, id uint64) {
		if !utf8.ValidString(dev) || !utf8.ValidString(long) || !utf8.ValidString(short) {
			t.Skip()
		}
		// Alternate a large and a small frame several times through one
		// buffer so pooled encode and decode buffers get reused with
		// different prior contents.
		frames := []Request{
			{ID: id, Op: OpExec, Device: dev, Name: "ARM", Args: []string{long, long}},
			{ID: id + 1, Op: OpTrace, Device: dev, Name: "MVNG", Value: short},
			{ID: id + 2, Op: OpPing},
			{ID: id + 3, Op: OpExec, Device: dev, Name: "ARM", Value: long, Error: short},
			{ID: id + 4, Op: OpTrace, Name: short},
		}
		var buf bytes.Buffer
		for round := 0; round < 3; round++ {
			for i, in := range frames {
				buf.Reset()
				if err := WriteFrame(&buf, in); err != nil {
					t.Skip() // oversized inputs are rejected by design
				}
				var out Request
				if err := ReadFrame(&buf, &out); err != nil {
					t.Fatalf("round %d frame %d: decode: %v", round, i, err)
				}
				if !reflect.DeepEqual(out, in) {
					t.Fatalf("round %d frame %d: cross-frame leakage: got %+v want %+v",
						round, i, out, in)
				}
				if buf.Len() != 0 {
					t.Fatalf("round %d frame %d: %d trailing bytes after decode",
						round, i, buf.Len())
				}
			}
		}
	})
}
