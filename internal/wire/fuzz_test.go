package wire

import (
	"bytes"
	"testing"
	"unicode/utf8"
)

// FuzzReadFrame hardens the middlebox's untrusted input path: arbitrary
// bytes must never panic or allocate unboundedly — they may only produce an
// error or a valid request.
func FuzzReadFrame(f *testing.F) {
	// Seed corpus: a valid frame, a truncated frame, garbage, an oversized
	// header, and an empty input.
	var valid bytes.Buffer
	_ = WriteFrame(&valid, Request{ID: 1, Op: OpExec, Device: "C9", Name: "ARM", Args: []string{"1"}})
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())-3])
	f.Add([]byte("garbage"))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		_ = ReadFrame(bytes.NewReader(data), &req) // must not panic
	})
}

// FuzzFrameRoundTrip: any request that encodes must decode to itself.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint64(1), "C9", "ARM", "1|2|3", "ok", "")
	f.Add(uint64(0), "", "", "", "", "some error")
	f.Fuzz(func(t *testing.T, id uint64, dev, name, args, value, errStr string) {
		// encoding/json replaces invalid UTF-8 with U+FFFD by design; the
		// round-trip identity only holds for valid strings.
		for _, s := range []string{dev, name, args, value, errStr} {
			if !utf8.ValidString(s) {
				t.Skip()
			}
		}
		in := Request{ID: id, Op: OpExec, Device: dev, Name: name, Value: value, Error: errStr}
		if args != "" {
			in.Args = []string{args}
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, in); err != nil {
			t.Skip() // oversized inputs are rejected by design
		}
		var out Request
		if err := ReadFrame(&buf, &out); err != nil {
			t.Fatalf("decode of just-encoded frame: %v", err)
		}
		if out.ID != in.ID || out.Device != in.Device || out.Name != in.Name ||
			out.Value != in.Value || out.Error != in.Error {
			t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
		}
	})
}
