package wire

// Protocol v2: the compact binary frame codec.
//
// v1 frames JSON through encoding/json on both ends; once the middlebox
// exec path itself costs a few hundred nanoseconds, that marshalling is the
// dominant per-request tax. v2 replaces it with a hand-rolled tagged binary
// encoding that does zero reflection and (on the hot request/reply path)
// ~zero allocations per frame:
//
//	frame   := uvarint(len) payload        // len ≤ MaxFrameSize
//	payload := type field* [end]
//	field   := tag value                   // value shape fixed per tag
//
// The type byte names the message (Request, Reply, Subscribe, Event);
// fields carry explicit tags so zero-valued fields are simply omitted
// (v1's omitempty, one byte instead of a quoted key) and decoding is a
// tag-dispatch loop, never a reflected field walk. Nested messages — the
// store.Record and power.Sample embedded in an Event — are tag streams
// terminated by the reserved end tag 0; the top level needs no terminator
// because the frame length delimits it.
//
// Value shapes: uvarint (counters, lengths), zigzag varint (signed nanos,
// zone offsets), length-prefixed UTF-8 bytes (strings), and raw
// little-endian float64 bits (power samples). Timestamps travel as
// UnixNano plus the zone offset in seconds, which preserves exactly what
// v1's RFC 3339 round trip preserves: the instant and the offset, not the
// zone name or the monotonic reading. Times outside the UnixNano range
// (years ≲1678 or ≳2262) are not representable — device traces are always
// inside it.
//
// Decoding interns the protocol's fixed vocabulary — ops, event kinds,
// policies, modes, procedure labels, and the 52-command device catalog —
// so the strings on the hot path resolve to shared instances instead of
// fresh allocations. Interning is a perf heuristic only: unknown strings
// are simply copied.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"rad/internal/device"
	"rad/internal/power"
	"rad/internal/store"
)

// Binary frame type bytes.
const (
	binRequest byte = iota + 1
	binReply
	binSubscribe
	binEvent
	binPing
	binPong
)

// Request field tags.
const (
	reqID byte = iota + 1
	reqOp
	reqDevice
	reqName
	reqArgs
	reqValue
	reqError
	reqStart
	reqEnd
	reqProcedure
	reqRun
	reqTenant
	reqTraceID
	reqSpanID
)

// Reply field tags.
const (
	repID byte = iota + 1
	repValue
	repError
)

// Subscribe field tags.
const (
	subOp byte = iota + 1
	subName
	subDevice
	subKey
	subProcedure
	subRun
	subSnapshot
	subPower
	subPolicy
	subBuffer
	subTenant
	subResume
)

// Event field tags.
const (
	evKind byte = iota + 1
	evRecord
	evSample
	evDropped
	evError
	evGap
	evTraceID
	evSpanID
)

// Ping/Pong field tags (both frames share the one-field shape).
const (
	pingSeq byte = iota + 1
)

// store.Record field tags (nested inside an Event).
const (
	recSeq byte = iota + 1
	recTime
	recEndTime
	recDevice
	recName
	recArgs
	recResponse
	recException
	recProcedure
	recRun
	recMode
)

// power.Sample field tags (nested inside an Event).
const (
	sampTime byte = iota + 1
	sampValues
)

// internTable maps the protocol's fixed vocabulary to shared string
// instances so hot-path decodes allocate nothing for them.
var internTable = buildInternTable()

func buildInternTable() map[string]string {
	words := []string{
		string(OpExec), string(OpTrace), string(OpPing), string(OpSubscribe),
		EventTrace, EventPower, EventSnapshotEnd, EventError, EventResumeGap,
		PolicyDropOldest, PolicyBlock,
		"DIRECT", "REMOTE",
		store.UnknownProcedure,
		// The paper's supervised procedure labels (internal/procedure sits
		// above the tracer, so the literals are repeated here).
		"P1", "P2", "P3", "P4", "P5", "P6",
		"ok", "pong", "replay",
	}
	for _, spec := range device.Catalog() {
		words = append(words, spec.Device, spec.Name)
	}
	m := make(map[string]string, len(words))
	for _, w := range words {
		m[w] = w
	}
	return m
}

// intern returns a shared string for b when it is part of the protocol
// vocabulary, and a fresh copy otherwise. The map lookup with a []byte→
// string conversion key does not allocate.
func intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := internTable[string(b)]; ok {
		return s
	}
	return string(b)
}

// Per-connection learned vocabulary. The static intern table covers the
// protocol's fixed words; tenant IDs are an open vocabulary chosen by the
// peer, yet each one repeats on every frame of a fleet workload. A
// connection therefore learns the tenant IDs it sees and hands back shared
// instances — but the table is strictly bounded, because an interning table
// a hostile peer can grow without limit is a memory exhaustion primitive
// against the trusted middlebox. Past the cap the decode fails hard
// (ErrVocabFull) rather than degrading: a single connection presenting more
// than MaxConnVocab distinct tenants is either an attack or a client bug,
// and either way the fleet listener wants it severed, not absorbed. Peers
// that legitimately multiplex more tenants spread them across connections.
const (
	// MaxConnVocab bounds the number of distinct learned (non-catalog)
	// vocabulary words one connection may present.
	MaxConnVocab = 4096
	// maxVocabWordLen bounds one learned word; longer strings decode fine
	// but are never retained (they cannot be legal tenant IDs anyway).
	maxVocabWordLen = 256
)

// ErrVocabFull is returned (wrapped, as a strict decode error) when a
// connection exceeds MaxConnVocab distinct learned vocabulary words.
var ErrVocabFull = errors.New("wire: per-connection vocabulary limit exceeded")

// connVocab is one connection's learned-word intern table. It is owned by a
// single Conn and accessed only from that Conn's read path, so it needs no
// lock.
type connVocab struct {
	words map[string]string
}

// intern resolves b through the static table, then the learned table,
// learning it when there is room. A word past maxVocabWordLen is copied
// without being retained; a connection past MaxConnVocab distinct words is
// a protocol violation.
func (v *connVocab) intern(b []byte) (string, error) {
	if len(b) == 0 {
		return "", nil
	}
	if s, ok := internTable[string(b)]; ok {
		return s, nil
	}
	if v == nil || len(b) > maxVocabWordLen {
		return string(b), nil
	}
	if s, ok := v.words[string(b)]; ok {
		return s, nil
	}
	if len(v.words) >= MaxConnVocab {
		return "", fmt.Errorf("%w (%d distinct words)", ErrVocabFull, MaxConnVocab)
	}
	if v.words == nil {
		v.words = make(map[string]string, 8)
	}
	s := string(b)
	v.words[s] = s
	return s, nil
}

// ---------------------------------------------------------------------------
// Append-encoders. All of them grow dst in place and never fail; size
// enforcement happens once, on the finished frame.

func putUint(b []byte, tag byte, v uint64) []byte {
	if v == 0 {
		return b
	}
	b = append(b, tag)
	return binary.AppendUvarint(b, v)
}

func putInt(b []byte, tag byte, v int64) []byte {
	if v == 0 {
		return b
	}
	b = append(b, tag)
	return binary.AppendVarint(b, v)
}

func putStr(b []byte, tag byte, s string) []byte {
	if s == "" {
		return b
	}
	b = append(b, tag)
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func putStrs(b []byte, tag byte, ss []string) []byte {
	if len(ss) == 0 {
		return b
	}
	b = append(b, tag)
	b = binary.AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = binary.AppendUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}
	return b
}

// putBool encodes true as the bare tag; false is omitted.
func putBool(b []byte, tag byte, v bool) []byte {
	if !v {
		return b
	}
	return append(b, tag)
}

// putTime encodes a non-zero time as UnixNano plus the zone offset in
// seconds; the zero time is omitted.
func putTime(b []byte, tag byte, t time.Time) []byte {
	if t.IsZero() {
		return b
	}
	b = append(b, tag)
	b = binary.AppendVarint(b, t.UnixNano())
	_, off := t.Zone()
	return binary.AppendVarint(b, int64(off))
}

func appendRequest(b []byte, q *Request) []byte {
	b = append(b, binRequest)
	b = putUint(b, reqID, q.ID)
	b = putStr(b, reqOp, string(q.Op))
	b = putStr(b, reqDevice, q.Device)
	b = putStr(b, reqName, q.Name)
	b = putStrs(b, reqArgs, q.Args)
	b = putStr(b, reqValue, q.Value)
	b = putStr(b, reqError, q.Error)
	b = putInt(b, reqStart, q.StartNanos)
	b = putInt(b, reqEnd, q.EndNanos)
	b = putStr(b, reqProcedure, q.Procedure)
	b = putStr(b, reqRun, q.Run)
	b = putStr(b, reqTenant, q.Tenant)
	b = putUint(b, reqTraceID, q.TraceID)
	b = putUint(b, reqSpanID, q.SpanID)
	return b
}

func appendReply(b []byte, p *Reply) []byte {
	b = append(b, binReply)
	b = putUint(b, repID, p.ID)
	b = putStr(b, repValue, p.Value)
	b = putStr(b, repError, p.Error)
	return b
}

func appendSubscribe(b []byte, s *Subscribe) []byte {
	b = append(b, binSubscribe)
	b = putStr(b, subOp, string(s.Op))
	b = putStr(b, subName, s.Name)
	b = putStr(b, subDevice, s.Device)
	b = putStr(b, subKey, s.Key)
	b = putStr(b, subProcedure, s.Procedure)
	b = putStr(b, subRun, s.Run)
	b = putBool(b, subSnapshot, s.Snapshot)
	b = putBool(b, subPower, s.Power)
	b = putStr(b, subPolicy, s.Policy)
	b = putInt(b, subBuffer, int64(s.Buffer))
	b = putStr(b, subTenant, s.Tenant)
	b = putUint(b, subResume, s.ResumeFrom)
	return b
}

func appendEvent(b []byte, e *Event) []byte {
	b = append(b, binEvent)
	b = putStr(b, evKind, e.Kind)
	if e.Record != nil {
		b = append(b, evRecord)
		b = appendRecordBody(b, e.Record)
	}
	if e.Sample != nil {
		b = append(b, evSample)
		b = appendSampleBody(b, e.Sample)
	}
	b = putUint(b, evDropped, e.Dropped)
	b = putStr(b, evError, e.Error)
	b = putUint(b, evGap, e.Gap)
	b = putUint(b, evTraceID, e.TraceID)
	b = putUint(b, evSpanID, e.SpanID)
	return b
}

// appendPingPong encodes a Ping or Pong: the type byte plus the (omitted
// when zero) sequence field.
func appendPingPong(b []byte, typ byte, seq uint64) []byte {
	b = append(b, typ)
	return putUint(b, pingSeq, seq)
}

// appendRecordBody encodes a nested record: its tagged fields followed by
// the end tag.
func appendRecordBody(b []byte, r *store.Record) []byte {
	b = putUint(b, recSeq, r.Seq)
	b = putTime(b, recTime, r.Time)
	b = putTime(b, recEndTime, r.EndTime)
	b = putStr(b, recDevice, r.Device)
	b = putStr(b, recName, r.Name)
	b = putStrs(b, recArgs, r.Args)
	b = putStr(b, recResponse, r.Response)
	b = putStr(b, recException, r.Exception)
	b = putStr(b, recProcedure, r.Procedure)
	b = putStr(b, recRun, r.Run)
	b = putStr(b, recMode, r.Mode)
	return append(b, 0)
}

func appendSampleBody(b []byte, s *power.Sample) []byte {
	b = putTime(b, sampTime, s.Time)
	if len(s.Values) > 0 {
		b = append(b, sampValues)
		b = binary.AppendUvarint(b, uint64(len(s.Values)))
		for _, v := range s.Values {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
	}
	return append(b, 0)
}

// appendBinaryFrame appends v's binary payload (type byte + fields, no
// length prefix) to dst.
func appendBinaryFrame(dst []byte, v any) ([]byte, error) {
	switch f := v.(type) {
	case *Request:
		return appendRequest(dst, f), nil
	case Request:
		return appendRequest(dst, &f), nil
	case *Reply:
		return appendReply(dst, f), nil
	case Reply:
		return appendReply(dst, &f), nil
	case *Subscribe:
		return appendSubscribe(dst, f), nil
	case Subscribe:
		return appendSubscribe(dst, &f), nil
	case *Event:
		return appendEvent(dst, f), nil
	case Event:
		return appendEvent(dst, &f), nil
	case *Ping:
		return appendPingPong(dst, binPing, f.Seq), nil
	case Ping:
		return appendPingPong(dst, binPing, f.Seq), nil
	case *Pong:
		return appendPingPong(dst, binPong, f.Seq), nil
	case Pong:
		return appendPingPong(dst, binPong, f.Seq), nil
	default:
		return dst, fmt.Errorf("wire: binary codec cannot encode %T", v)
	}
}

// ---------------------------------------------------------------------------
// Decoder. A sticky-error byte reader over the frame payload: every length
// is validated against the bytes actually present before any allocation, so
// a malicious header can make the decoder fail, never over-allocate.

type breader struct {
	b     []byte
	err   error
	vocab *connVocab
}

func (r *breader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: binary frame: "+format, args...)
	}
}

// tag returns the next field tag, or 0 at a message end (explicit end tag
// or payload exhaustion).
func (r *breader) tag() byte {
	if r.err != nil || len(r.b) == 0 {
		return 0
	}
	t := r.b[0]
	r.b = r.b[1:]
	return t
}

func (r *breader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail("truncated uvarint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *breader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail("truncated varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *breader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)) {
		r.fail("string of %d bytes announced with %d left", n, len(r.b))
		return ""
	}
	s := intern(r.b[:n])
	r.b = r.b[n:]
	return s
}

// vocabStr reads a length-prefixed string through the connection's learned
// vocabulary (tenant IDs and the like: open vocabulary, but repeated on
// every frame). Exceeding the learned-word cap is a strict decode error —
// the sticky error severs the connection like any other protocol violation.
func (r *breader) vocabStr() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)) {
		r.fail("string of %d bytes announced with %d left", n, len(r.b))
		return ""
	}
	s, err := r.vocab.intern(r.b[:n])
	if err != nil {
		if r.err == nil {
			r.err = err
		}
		return ""
	}
	r.b = r.b[n:]
	return s
}

func (r *breader) strs() []string {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	// Each element costs at least one length byte, so a count beyond the
	// remaining payload is a lie; reject it before allocating.
	if n > uint64(len(r.b)) {
		r.fail("string slice of %d elements announced with %d bytes left", n, len(r.b))
		return nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.str())
		if r.err != nil {
			return nil
		}
	}
	return out
}

func (r *breader) floats() []float64 {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b))/8 {
		r.fail("float slice of %d elements announced with %d bytes left", n, len(r.b))
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.b[i*8:]))
	}
	r.b = r.b[n*8:]
	return out
}

// maxZoneOffset bounds a sane UTC offset (UTC±18h covers every real zone).
const maxZoneOffset = 18 * 3600

func (r *breader) time() time.Time {
	nanos := r.varint()
	off := r.varint()
	if r.err != nil {
		return time.Time{}
	}
	if off < -maxZoneOffset || off > maxZoneOffset {
		r.fail("time zone offset %d out of range", off)
		return time.Time{}
	}
	t := time.Unix(0, nanos)
	if off == 0 {
		return t.UTC()
	}
	return t.In(time.FixedZone("", int(off)))
}

func decodeRequest(r *breader, q *Request) {
	*q = Request{}
	for {
		switch t := r.tag(); t {
		case 0:
			return
		case reqID:
			q.ID = r.uvarint()
		case reqOp:
			q.Op = Op(r.str())
		case reqDevice:
			q.Device = r.str()
		case reqName:
			q.Name = r.str()
		case reqArgs:
			q.Args = r.strs()
		case reqValue:
			q.Value = r.str()
		case reqError:
			q.Error = r.str()
		case reqStart:
			q.StartNanos = r.varint()
		case reqEnd:
			q.EndNanos = r.varint()
		case reqProcedure:
			q.Procedure = r.str()
		case reqRun:
			q.Run = r.str()
		case reqTenant:
			q.Tenant = r.vocabStr()
		case reqTraceID:
			q.TraceID = r.uvarint()
		case reqSpanID:
			q.SpanID = r.uvarint()
		default:
			r.fail("request: unknown field tag %d", t)
			return
		}
		if r.err != nil {
			return
		}
	}
}

func decodeReply(r *breader, p *Reply) {
	*p = Reply{}
	for {
		switch t := r.tag(); t {
		case 0:
			return
		case repID:
			p.ID = r.uvarint()
		case repValue:
			p.Value = r.str()
		case repError:
			p.Error = r.str()
		default:
			r.fail("reply: unknown field tag %d", t)
			return
		}
		if r.err != nil {
			return
		}
	}
}

func decodeSubscribe(r *breader, s *Subscribe) {
	*s = Subscribe{}
	for {
		switch t := r.tag(); t {
		case 0:
			return
		case subOp:
			s.Op = Op(r.str())
		case subName:
			s.Name = r.str()
		case subDevice:
			s.Device = r.str()
		case subKey:
			s.Key = r.str()
		case subProcedure:
			s.Procedure = r.str()
		case subRun:
			s.Run = r.str()
		case subSnapshot:
			s.Snapshot = true
		case subPower:
			s.Power = true
		case subPolicy:
			s.Policy = r.str()
		case subBuffer:
			s.Buffer = int(r.varint())
		case subTenant:
			s.Tenant = r.vocabStr()
		case subResume:
			s.ResumeFrom = r.uvarint()
		default:
			r.fail("subscribe: unknown field tag %d", t)
			return
		}
		if r.err != nil {
			return
		}
	}
}

func decodeEvent(r *breader, e *Event) {
	*e = Event{}
	for {
		switch t := r.tag(); t {
		case 0:
			return
		case evKind:
			e.Kind = r.str()
		case evRecord:
			rec := new(store.Record)
			decodeRecordBody(r, rec)
			e.Record = rec
		case evSample:
			s := new(power.Sample)
			decodeSampleBody(r, s)
			e.Sample = s
		case evDropped:
			e.Dropped = r.uvarint()
		case evError:
			e.Error = r.str()
		case evGap:
			e.Gap = r.uvarint()
		case evTraceID:
			e.TraceID = r.uvarint()
		case evSpanID:
			e.SpanID = r.uvarint()
		default:
			r.fail("event: unknown field tag %d", t)
			return
		}
		if r.err != nil {
			return
		}
	}
}

// decodeRecordBody reads a nested record's tag stream up to and including
// its end tag.
func decodeRecordBody(r *breader, rec *store.Record) {
	for {
		switch t := r.tag(); t {
		case 0:
			return
		case recSeq:
			rec.Seq = r.uvarint()
		case recTime:
			rec.Time = r.time()
		case recEndTime:
			rec.EndTime = r.time()
		case recDevice:
			rec.Device = r.str()
		case recName:
			rec.Name = r.str()
		case recArgs:
			rec.Args = r.strs()
		case recResponse:
			rec.Response = r.str()
		case recException:
			rec.Exception = r.str()
		case recProcedure:
			rec.Procedure = r.str()
		case recRun:
			rec.Run = r.str()
		case recMode:
			rec.Mode = r.str()
		default:
			r.fail("record: unknown field tag %d", t)
			return
		}
		if r.err != nil {
			return
		}
	}
}

// decodePingPong reads the shared Ping/Pong field stream into seq.
func decodePingPong(r *breader, what string, seq *uint64) {
	*seq = 0
	for {
		switch t := r.tag(); t {
		case 0:
			return
		case pingSeq:
			*seq = r.uvarint()
		default:
			r.fail("%s: unknown field tag %d", what, t)
			return
		}
		if r.err != nil {
			return
		}
	}
}

func decodeSampleBody(r *breader, s *power.Sample) {
	for {
		switch t := r.tag(); t {
		case 0:
			return
		case sampTime:
			s.Time = r.time()
		case sampValues:
			s.Values = r.floats()
		default:
			r.fail("sample: unknown field tag %d", t)
			return
		}
		if r.err != nil {
			return
		}
	}
}

var errEmptyBinaryFrame = errors.New("wire: empty binary frame")

// decodeBinaryFrame decodes one complete binary payload into v with no
// learned vocabulary (every learned-vocab string is copied fresh). The
// connection read path uses decodeBinaryFrameVocab instead.
func decodeBinaryFrame(payload []byte, v any) error {
	return decodeBinaryFrameVocab(payload, v, nil)
}

// decodeBinaryFrameVocab decodes one complete binary payload into v, which
// must point at the frame type the payload carries — a mismatch is a
// protocol error, reported precisely rather than producing a half-filled
// struct. vocab, when non-nil, is the owning connection's learned-word
// table; a frame that would grow it past MaxConnVocab fails the decode.
func decodeBinaryFrameVocab(payload []byte, v any, vocab *connVocab) error {
	if len(payload) == 0 {
		return errEmptyBinaryFrame
	}
	typ := payload[0]
	r := &breader{b: payload[1:], vocab: vocab}
	switch dst := v.(type) {
	case *Request:
		if typ != binRequest {
			return fmt.Errorf("wire: binary frame type %#02x, want request (%#02x)", typ, binRequest)
		}
		decodeRequest(r, dst)
	case *Reply:
		if typ != binReply {
			return fmt.Errorf("wire: binary frame type %#02x, want reply (%#02x)", typ, binReply)
		}
		decodeReply(r, dst)
	case *Subscribe:
		if typ != binSubscribe {
			return fmt.Errorf("wire: binary frame type %#02x, want subscribe (%#02x)", typ, binSubscribe)
		}
		decodeSubscribe(r, dst)
	case *Event:
		if typ != binEvent {
			return fmt.Errorf("wire: binary frame type %#02x, want event (%#02x)", typ, binEvent)
		}
		decodeEvent(r, dst)
	case *Ping:
		if typ != binPing {
			return fmt.Errorf("wire: binary frame type %#02x, want ping (%#02x)", typ, binPing)
		}
		decodePingPong(r, "ping", &dst.Seq)
	case *Pong:
		if typ != binPong {
			return fmt.Errorf("wire: binary frame type %#02x, want pong (%#02x)", typ, binPong)
		}
		decodePingPong(r, "pong", &dst.Seq)
	case *TailFrame:
		// The tail direction is a union: data events interleaved with
		// liveness pings, discriminated by the frame type byte.
		*dst = TailFrame{}
		switch typ {
		case binEvent:
			dst.Event = new(Event)
			decodeEvent(r, dst.Event)
		case binPing:
			dst.Ping = new(Ping)
			decodePingPong(r, "ping", &dst.Ping.Seq)
		default:
			return fmt.Errorf("wire: binary frame type %#02x, want event (%#02x) or ping (%#02x)", typ, binEvent, binPing)
		}
	default:
		return fmt.Errorf("wire: binary codec cannot decode into %T", v)
	}
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("wire: binary frame: %d trailing bytes after message end", len(r.b))
	}
	return nil
}
