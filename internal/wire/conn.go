package wire

// Version negotiation and the negotiated connection.
//
// A v2 client opens its connection with a five-byte preamble — the magic
// "RAD2" followed by the version byte — and waits for the server to echo
// it before the first frame. A v1 client sends no preamble: its first
// bytes are a 4-byte big-endian frame length, and because MaxFrameSize is
// 1 MiB the first byte of any legal v1 frame is 0x00, which can never be
// confused with the magic's 'R'. One peek at the first byte therefore
// tells a listener which protocol the peer speaks, so a single listener
// serves v1 JSON clients and v2 binary clients side by side, and an
// unupgraded client keeps working against an upgraded middlebox with no
// code change.
//
//	client                         server
//	  | 'R''A''D''2' 0x02  ----->   |    (v2 preamble)
//	  |        <-----  'R''A''D''2' 0x02 (ack)
//	  | binary frames  <---------> binary frames
//
//	client                         server
//	  | 0x00 len³ json  ------->    |    (v1 frame, no preamble)
//	  | json frames  <----------> json frames
//
// Dialing with ProtoAuto attempts the v2 handshake and falls back to a
// fresh v1 connection when the ack never arrives — a JSON-only listener
// reads the preamble as an absurd frame length and drops the connection,
// which the dialer treats as "speak v1".

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// Version is a concrete wire protocol version carried by a negotiated
// connection.
type Version byte

const (
	// V1 is the original length-prefixed JSON framing.
	V1 Version = 1
	// V2 is the compact binary framing of binary.go.
	V2 Version = 2
)

// String returns the version as spelled in flags and metrics labels.
func (v Version) String() string {
	switch v {
	case V1:
		return "v1"
	case V2:
		return "v2"
	default:
		return fmt.Sprintf("v%d", byte(v))
	}
}

// Proto selects which protocol(s) an endpoint is willing to speak. The
// zero value is ProtoAuto: negotiate per connection.
type Proto int

const (
	// ProtoAuto negotiates: a listener sniffs each connection's first byte,
	// a dialer attempts the v2 handshake and falls back to v1.
	ProtoAuto Proto = iota
	// ProtoV1 pins the endpoint to the v1 JSON framing.
	ProtoV1
	// ProtoV2 requires the binary framing; peers that do not speak it are
	// rejected (listener) or the dial fails (client).
	ProtoV2
)

// String returns the selector as spelled on CLI flags.
func (p Proto) String() string {
	switch p {
	case ProtoV1:
		return "v1"
	case ProtoV2:
		return "v2"
	default:
		return "auto"
	}
}

// ParseProto parses a protocol selector flag value.
func ParseProto(s string) (Proto, error) {
	switch s {
	case "", "auto":
		return ProtoAuto, nil
	case "v1", "json":
		return ProtoV1, nil
	case "v2", "binary":
		return ProtoV2, nil
	default:
		return ProtoAuto, fmt.Errorf("wire: unknown protocol %q (want auto, v1, or v2)", s)
	}
}

// preambleLen is the size of the v2 connection preamble: 4 magic bytes
// plus the version byte.
const preambleLen = 5

// preamble is the v2 connection opener and its ack: magic + version.
var preamble = [preambleLen]byte{'R', 'A', 'D', '2', byte(V2)}

// v2PrefixLen reserves room for the largest uvarint length prefix a legal
// frame can need (MaxFrameSize fits in 3 bytes; 5 leaves headroom).
const v2PrefixLen = 5

// zeroPrefix is the placeholder the v2 encoder reserves for the length
// prefix, patched after the payload is built.
var zeroPrefix [v2PrefixLen]byte

// connBufSize sizes each connection's read buffer: most frames fit, and the
// buffered reader also serves the one-byte protocol sniff.
const connBufSize = 8 << 10

// Conn is one negotiated wire connection: framed reads and writes in
// whichever protocol version the handshake settled on. A Conn is not safe
// for concurrent use of the same direction; the request/reply and tail
// protocols already serialize each direction.
type Conn struct {
	w       io.Writer
	br      *bufio.Reader
	version Version
	m       *Metrics

	// vocab is this connection's learned-word intern table (tenant IDs and
	// other open-vocabulary strings that repeat across frames). It is only
	// touched from the read path, which is single-threaded per direction, so
	// it needs no lock; its growth is bounded by MaxConnVocab.
	vocab connVocab

	// capture, when set, retains the latest per-frame codec latencies for
	// LastCodecLatency. Like the metrics timers it measures the marshal step
	// only — never socket I/O — so a span built from it reflects codec work,
	// not idle wait. Single-threaded per direction, like the codec itself.
	capture bool
	lastDec time.Duration
	lastEnc time.Duration
}

// NewConn wraps rw speaking the given version directly, with no handshake
// bytes exchanged — the building block for Accept/ClientV2, and for tests
// and benchmarks that want a codec without a socket. m may be nil.
func NewConn(rw io.ReadWriter, v Version, m *Metrics) *Conn {
	return &Conn{w: rw, br: bufio.NewReaderSize(rw, connBufSize), version: v, m: m}
}

// Version reports the protocol version the connection speaks.
func (c *Conn) Version() Version { return c.version }

// Accept negotiates the server side of a fresh connection. Under ProtoAuto
// it peeks at the first byte: the v2 magic upgrades the connection (and is
// acked), anything else is served as v1 JSON. ProtoV1 skips the sniff
// entirely — bytes flow exactly as they did before v2 existed — and
// ProtoV2 rejects peers that do not open with the preamble.
func Accept(rw io.ReadWriter, allow Proto, m *Metrics) (*Conn, error) {
	c := NewConn(rw, V1, m)
	if allow == ProtoV1 {
		c.countConn()
		return c, nil
	}
	first, err := c.br.Peek(1)
	if err != nil {
		return nil, fmt.Errorf("wire: negotiate: %w", err)
	}
	if first[0] != preamble[0] {
		if allow == ProtoV2 {
			return nil, fmt.Errorf("wire: listener requires protocol v2, peer opened with byte %#02x (a v1 frame?)", first[0])
		}
		c.countConn()
		return c, nil
	}
	var pre [preambleLen]byte
	if _, err := io.ReadFull(c.br, pre[:]); err != nil {
		return nil, fmt.Errorf("wire: read preamble: %w", err)
	}
	if pre[0] != preamble[0] || pre[1] != preamble[1] || pre[2] != preamble[2] || pre[3] != preamble[3] {
		return nil, fmt.Errorf("wire: bad preamble magic %q", pre[:4])
	}
	if pre[4] != byte(V2) {
		return nil, fmt.Errorf("wire: unsupported protocol version %d (max %d)", pre[4], V2)
	}
	if _, err := rw.Write(preamble[:]); err != nil {
		return nil, fmt.Errorf("wire: write preamble ack: %w", err)
	}
	c.version = V2
	c.countConn()
	return c, nil
}

// ClientV1 wraps rw as a plain v1 JSON connection; no handshake bytes are
// exchanged, byte-for-byte identical to the pre-v2 protocol.
func ClientV1(rw io.ReadWriter, m *Metrics) *Conn {
	c := NewConn(rw, V1, m)
	c.countConn()
	return c
}

// ClientV2 performs the client side of the v2 handshake: preamble out,
// ack in. The error distinguishes a dead connection from a server that
// answered with something other than the ack.
func ClientV2(rw io.ReadWriter, m *Metrics) (*Conn, error) {
	c := NewConn(rw, V2, m)
	if _, err := rw.Write(preamble[:]); err != nil {
		return nil, fmt.Errorf("wire: write preamble: %w", err)
	}
	var ack [preambleLen]byte
	if _, err := io.ReadFull(c.br, ack[:]); err != nil {
		return nil, fmt.Errorf("wire: v2 handshake: no preamble ack (v1-only listener?): %w", err)
	}
	if ack != preamble {
		return nil, fmt.Errorf("wire: v2 handshake: bad ack % x", ack[:])
	}
	c.countConn()
	return c, nil
}

// Dial connects to addr and negotiates the requested protocol. ProtoAuto
// attempts the v2 handshake first and redials as v1 when the handshake
// dies — the fate of a preamble sent to a JSON-only listener, which reads
// it as an oversized frame header and closes the connection.
func Dial(addr string, proto Proto, m *Metrics) (net.Conn, *Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	switch proto {
	case ProtoV1:
		return conn, ClientV1(conn, m), nil
	case ProtoV2:
		wc, err := ClientV2(conn, m)
		if err != nil {
			_ = conn.Close()
			return nil, nil, err
		}
		return conn, wc, nil
	default:
		wc, err := ClientV2(conn, m)
		if err == nil {
			return conn, wc, nil
		}
		_ = conn.Close()
		conn, err = net.Dial("tcp", addr)
		if err != nil {
			return nil, nil, err
		}
		return conn, ClientV1(conn, m), nil
	}
}

// ReadFrame reads one frame in the connection's negotiated version and
// decodes it into v.
func (c *Conn) ReadFrame(v any) error {
	if c.version == V2 {
		return c.readV2(v)
	}
	if tf, ok := v.(*TailFrame); ok {
		// v1 predates the liveness protocol, so the tail direction carries
		// only events: the union degrades to its event arm.
		ev := new(Event)
		if err := c.readV1(ev); err != nil {
			return err
		}
		*tf = TailFrame{Event: ev}
		return nil
	}
	return c.readV1(v)
}

// WriteFrame encodes v in the connection's negotiated version and writes
// it as one frame with a single Write call.
func (c *Conn) WriteFrame(v any) error {
	if c.version == V2 {
		return c.writeV2(v)
	}
	switch v.(type) {
	case *Ping, Ping, *Pong, Pong:
		// Refused rather than marshalled: a v1 peer would decode the JSON
		// into a kind-less Event and silently misread the probe.
		return fmt.Errorf("wire: %T is a v2 control frame; v1 connections have no liveness protocol", v)
	}
	return c.writeV1(v)
}

func (c *Conn) readV1(v any) error {
	pb, n, err := readPayload(c.br)
	if err != nil {
		return err
	}
	defer putBuf(pb)
	start := c.stamp()
	if err := json.Unmarshal((*pb)[:n], v); err != nil {
		return fmt.Errorf("wire: unmarshal frame: %w", err)
	}
	c.observeRead(start)
	return nil
}

func (c *Conn) readV2(v any) error {
	size, err := binary.ReadUvarint(c.br)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("wire: read frame header: %w", err)
	}
	if size > MaxFrameSize {
		return frameTooLarge(size)
	}
	pb := getBuf()
	defer putBuf(pb)
	payload := sizeBuf(pb, int(size))
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return fmt.Errorf("wire: read frame payload: %w", err)
	}
	start := c.stamp()
	if err := decodeBinaryFrameVocab(payload, v, &c.vocab); err != nil {
		return err
	}
	c.observeRead(start)
	return nil
}

func (c *Conn) writeV1(v any) error {
	b := encPool.Get().(*encBuf)
	defer func() {
		if b.buf.Cap() <= pooledLimit {
			encPool.Put(b)
		}
	}()
	start := c.stamp()
	frame, err := b.marshal(v)
	if err != nil {
		return err
	}
	c.observeWrite(start)
	if _, err := c.w.Write(frame); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

func (c *Conn) writeV2(v any) error {
	pb := getBuf()
	defer putBuf(pb)
	start := c.stamp()
	buf := append((*pb)[:0], zeroPrefix[:]...)
	buf, err := appendBinaryFrame(buf, v)
	if err != nil {
		return err
	}
	*pb = buf // keep any growth for the pool
	n := len(buf) - v2PrefixLen
	if n > MaxFrameSize {
		return frameTooLarge(uint64(n))
	}
	// Patch the uvarint length into the tail of the reserved prefix so the
	// frame goes out in one Write.
	var tmp [v2PrefixLen]byte
	ln := binary.PutUvarint(tmp[:], uint64(n))
	off := v2PrefixLen - ln
	copy(buf[off:], tmp[:ln])
	c.observeWrite(start)
	if _, err := c.w.Write(buf[off:]); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

// CaptureCodecLatency turns on per-frame codec-latency capture so a server
// can record wire decode/encode spans without attaching full Metrics.
func (c *Conn) CaptureCodecLatency() { c.capture = true }

// LastCodecLatency reports the codec time of the most recent read and write
// on this connection. Zero until CaptureCodecLatency is enabled and a frame
// has moved in that direction.
func (c *Conn) LastCodecLatency() (dec, enc time.Duration) {
	return c.lastDec, c.lastEnc
}

// stamp returns the encode/decode timer start, or the zero time when the
// connection is uninstrumented — the hot path pays nothing for metrics it
// does not have.
func (c *Conn) stamp() time.Time {
	if c.m == nil && !c.capture {
		return time.Time{}
	}
	return time.Now()
}

func (c *Conn) countConn() {
	if c.m != nil {
		c.m.conns[c.version-V1].Inc()
	}
}

func (c *Conn) observeRead(start time.Time) {
	if c.m == nil && !c.capture {
		return
	}
	d := time.Since(start)
	if c.capture {
		c.lastDec = d
	}
	if c.m != nil {
		i := c.version - V1
		c.m.rx[i].Inc()
		c.m.dec[i].Observe(d)
	}
}

func (c *Conn) observeWrite(start time.Time) {
	if c.m == nil && !c.capture {
		return
	}
	d := time.Since(start)
	if c.capture {
		c.lastEnc = d
	}
	if c.m != nil {
		i := c.version - V1
		c.m.tx[i].Inc()
		c.m.enc[i].Observe(d)
	}
}
