// Package wire implements the RPC message framing used between the lab
// computer (the tracer client) and the trusted middlebox.
//
// The paper's RATracer uses gRPC; this reproduction keeps the same
// architecture — a client stub on the lab computer and a server on the
// middlebox exchanging one message per device command — but implements the
// transport with the standard library only: length-prefixed JSON frames over
// a net.Conn. The frame format is
//
//	+----------------+-------------------+
//	| 4-byte big-    | JSON payload      |
//	| endian length  | (length bytes)    |
//	+----------------+-------------------+
//
// Frames larger than MaxFrameSize are rejected on both ends so that a
// corrupted or malicious peer cannot force unbounded allocation — the
// middlebox is the trusted component and must not be crashable from the
// untrusted lab computer (Fig. 1).
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// MaxFrameSize bounds a single frame. Device commands and responses are tiny
// (tens to hundreds of bytes); 1 MiB leaves generous headroom for batched
// trace uploads without allowing unbounded allocation.
const MaxFrameSize = 1 << 20

// ErrFrameTooLarge is returned when an incoming frame header announces a
// payload larger than MaxFrameSize.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// Op identifies the kind of request carried in a frame.
type Op string

// Request operations understood by the middlebox server.
const (
	// OpExec asks the middlebox to execute a device command and return the
	// response (REMOTE mode: the middlebox owns the device connection).
	OpExec Op = "exec"
	// OpTrace uploads a trace record for a command the client executed
	// locally (DIRECT mode: the middlebox only collects trace data).
	OpTrace Op = "trace"
	// OpPing measures round-trip time and checks liveness.
	OpPing Op = "ping"
)

// Request is one lab-computer → middlebox message. Exactly one device command
// per request, mirroring RATracer's per-access interception.
type Request struct {
	ID     uint64   `json:"id"`
	Op     Op       `json:"op"`
	Device string   `json:"device,omitempty"`
	Name   string   `json:"name,omitempty"`
	Args   []string `json:"args,omitempty"`

	// DIRECT-mode trace uploads carry the locally observed outcome.
	Value      string `json:"value,omitempty"`
	Error      string `json:"error,omitempty"`
	StartNanos int64  `json:"startNanos,omitempty"`
	EndNanos   int64  `json:"endNanos,omitempty"`
	Procedure  string `json:"procedure,omitempty"`
	Run        string `json:"run,omitempty"`
}

// Reply is one middlebox → lab-computer message.
type Reply struct {
	ID    uint64 `json:"id"`
	Value string `json:"value,omitempty"`
	Error string `json:"error,omitempty"`
}

// WriteFrame marshals v as JSON and writes it as one length-prefixed frame.
func WriteFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: marshal frame: %w", err)
	}
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: write frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame and unmarshals it into v.
func ReadFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("wire: read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return fmt.Errorf("wire: read frame payload: %w", err)
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("wire: unmarshal frame: %w", err)
	}
	return nil
}
