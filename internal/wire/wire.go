// Package wire implements the RPC message framing used between the lab
// computer (the tracer client) and the trusted middlebox.
//
// The paper's RATracer uses gRPC; this reproduction keeps the same
// architecture — a client stub on the lab computer and a server on the
// middlebox exchanging one message per device command — but implements the
// transport with the standard library only: length-prefixed JSON frames over
// a net.Conn. The frame format is
//
//	+----------------+-------------------+
//	| 4-byte big-    | JSON payload      |
//	| endian length  | (length bytes)    |
//	+----------------+-------------------+
//
// Frames larger than MaxFrameSize are rejected on both ends so that a
// corrupted or malicious peer cannot force unbounded allocation — the
// middlebox is the trusted component and must not be crashable from the
// untrusted lab computer (Fig. 1).
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"sync"
)

// MaxFrameSize bounds a single frame. Device commands and responses are tiny
// (tens to hundreds of bytes); 1 MiB leaves generous headroom for batched
// trace uploads without allowing unbounded allocation.
const MaxFrameSize = 1 << 20

// ErrFrameTooLarge is returned when an incoming frame header announces a
// payload larger than MaxFrameSize. Errors produced by the frame readers
// wrap it with the announced size, so a log line is enough to tell a
// corrupted header (absurd size) from an oversized-but-real frame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// frameTooLarge wraps ErrFrameTooLarge with the size the peer announced;
// errors.Is(err, ErrFrameTooLarge) still matches.
func frameTooLarge(announced uint64) error {
	return fmt.Errorf("%w (announced %d bytes, limit %d)", ErrFrameTooLarge, announced, MaxFrameSize)
}

// Op identifies the kind of request carried in a frame.
type Op string

// Request operations understood by the middlebox server.
const (
	// OpExec asks the middlebox to execute a device command and return the
	// response (REMOTE mode: the middlebox owns the device connection).
	OpExec Op = "exec"
	// OpTrace uploads a trace record for a command the client executed
	// locally (DIRECT mode: the middlebox only collects trace data).
	OpTrace Op = "trace"
	// OpPing measures round-trip time and checks liveness.
	OpPing Op = "ping"
)

// Request is one lab-computer → middlebox message. Exactly one device command
// per request, mirroring RATracer's per-access interception.
type Request struct {
	ID     uint64   `json:"id"`
	Op     Op       `json:"op"`
	Device string   `json:"device,omitempty"`
	Name   string   `json:"name,omitempty"`
	Args   []string `json:"args,omitempty"`

	// Tenant addresses one lab instance behind a fleet listener
	// (internal/fleet). Empty — the zero value — means the listener's
	// default tenant, so a single-tenant v1 or v2 peer that has never heard
	// of tenancy keeps working unchanged: the field is omitted from the
	// frame entirely when empty, in both encodings.
	Tenant string `json:"tenant,omitempty"`

	// DIRECT-mode trace uploads carry the locally observed outcome.
	Value      string `json:"value,omitempty"`
	Error      string `json:"error,omitempty"`
	StartNanos int64  `json:"startNanos,omitempty"`
	EndNanos   int64  `json:"endNanos,omitempty"`
	Procedure  string `json:"procedure,omitempty"`
	Run        string `json:"run,omitempty"`

	// TraceID/SpanID propagate the client's trace context (internal/obs/span)
	// so the middlebox stitches its server-side spans under the caller's.
	// Zero — the zero value — means "untraced", so peers that predate tracing
	// interoperate unchanged: the pair is omitted from the frame entirely when
	// zero, in both encodings, exactly like Tenant.
	TraceID uint64 `json:"traceId,omitempty"`
	SpanID  uint64 `json:"spanId,omitempty"`
}

// Reply is one middlebox → lab-computer message.
type Reply struct {
	ID    uint64 `json:"id"`
	Value string `json:"value,omitempty"`
	Error string `json:"error,omitempty"`
}

// pooledLimit caps how large a buffer the frame pools retain. Typical
// frames are well under a kilobyte; a rare near-MaxFrameSize frame must not
// pin a megabyte in every pool slot.
const pooledLimit = 64 << 10

// encBuf is a reusable encode buffer: the frame bytes plus a json.Encoder
// permanently bound to them. Each WriteFrame builds the complete frame —
// 4-byte header and JSON payload — in this one buffer and hands it to the
// writer with a single Write.
type encBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	b := &encBuf{}
	b.enc = json.NewEncoder(&b.buf)
	return b
}}

// bufPool holds raw payload buffers shared by the v1 frame reader and the
// v2 binary codec (both directions).
var bufPool = sync.Pool{New: func() any { return new([]byte) }}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(pb *[]byte) {
	if cap(*pb) <= pooledLimit {
		bufPool.Put(pb)
	}
}

// sizeBuf returns (*pb)[:n], growing the backing array when it is too
// small. Growth goes to the next power of two (capped at pooledLimit, the
// largest buffer the pool retains), so a ramp of slowly growing frames
// amortizes its reallocation instead of paying one per read; frames above
// pooledLimit get an exact-size buffer, since it will not be pooled anyway.
func sizeBuf(pb *[]byte, n int) []byte {
	if cap(*pb) < n {
		c := n
		if n <= pooledLimit {
			c = 1 << bits.Len(uint(n-1))
		}
		*pb = make([]byte, c)
	}
	return (*pb)[:n]
}

// marshal builds the complete v1 frame — 4-byte header plus JSON payload —
// in b and returns it. The buffer is fully rewritten per frame, so pooled
// reuse never leaks bytes from one frame into the next (fuzzed in
// fuzz_test.go).
func (b *encBuf) marshal(v any) ([]byte, error) {
	b.buf.Reset()
	b.buf.Write([]byte{0, 0, 0, 0}) // header placeholder, patched below
	// Encoder.Encode produces json.Marshal's exact bytes plus a trailing
	// newline, which the frame length excludes.
	if err := b.enc.Encode(v); err != nil {
		return nil, fmt.Errorf("wire: marshal frame: %w", err)
	}
	n := b.buf.Len() - 4 - 1
	if n > MaxFrameSize {
		return nil, frameTooLarge(uint64(n))
	}
	frame := b.buf.Bytes()[:4+n]
	binary.BigEndian.PutUint32(frame[:4], uint32(n))
	return frame, nil
}

// WriteFrame marshals v as JSON and writes it as one length-prefixed v1
// frame with a single Write call.
func WriteFrame(w io.Writer, v any) error {
	b := encPool.Get().(*encBuf)
	defer func() {
		if b.buf.Cap() <= pooledLimit {
			encPool.Put(b)
		}
	}()
	frame, err := b.marshal(v)
	if err != nil {
		return err
	}
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

// readPayload reads one v1 length-prefixed payload into a pooled buffer and
// returns the buffer holder plus the payload length. The caller must hand
// the holder back with putBuf once it is done with (*pb)[:n].
func readPayload(r io.Reader) (pb *[]byte, n int, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("wire: read frame header: %w", err)
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > MaxFrameSize {
		return nil, 0, frameTooLarge(uint64(size))
	}
	pb = getBuf()
	payload := sizeBuf(pb, int(size))
	if _, err := io.ReadFull(r, payload); err != nil {
		putBuf(pb)
		return nil, 0, fmt.Errorf("wire: read frame payload: %w", err)
	}
	return pb, int(size), nil
}

// ReadFrame reads one length-prefixed v1 frame and unmarshals it into v.
// The payload is read into a pooled buffer; encoding/json copies everything
// it stores into v, so the buffer can be reused by the next frame.
func ReadFrame(r io.Reader, v any) error {
	pb, n, err := readPayload(r)
	if err != nil {
		return err
	}
	defer putBuf(pb)
	if err := json.Unmarshal((*pb)[:n], v); err != nil {
		return fmt.Errorf("wire: unmarshal frame: %w", err)
	}
	return nil
}
