package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTripRequest(t *testing.T) {
	tests := []struct {
		name string
		req  Request
	}{
		{"exec", Request{ID: 1, Op: OpExec, Device: "C9", Name: "ARM", Args: []string{"10", "20", "30"}}},
		{"trace", Request{ID: 42, Op: OpTrace, Device: "UR3e", Name: "move_joints", Value: "ok", StartNanos: 100, EndNanos: 250, Procedure: "P2"}},
		{"ping", Request{ID: 7, Op: OpPing}},
		{"error", Request{ID: 9, Op: OpTrace, Device: "Quantos", Name: "start_dosing", Error: "front door crashed"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteFrame(&buf, tt.req); err != nil {
				t.Fatalf("WriteFrame: %v", err)
			}
			var got Request
			if err := ReadFrame(&buf, &got); err != nil {
				t.Fatalf("ReadFrame: %v", err)
			}
			if got.ID != tt.req.ID || got.Op != tt.req.Op || got.Device != tt.req.Device ||
				got.Name != tt.req.Name || got.Value != tt.req.Value || got.Error != tt.req.Error {
				t.Errorf("round trip mismatch: got %+v want %+v", got, tt.req)
			}
			if len(got.Args) != len(tt.req.Args) {
				t.Errorf("args length mismatch: got %d want %d", len(got.Args), len(tt.req.Args))
			}
		})
	}
}

func TestRoundTripReply(t *testing.T) {
	var buf bytes.Buffer
	want := Reply{ID: 3, Value: "MVNG 0 0 0 0", Error: ""}
	if err := WriteFrame(&buf, want); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	var got Reply
	if err := ReadFrame(&buf, &got); err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if got != want {
		t.Errorf("got %+v want %+v", got, want)
	}
}

func TestMultipleFramesSequential(t *testing.T) {
	var buf bytes.Buffer
	for i := uint64(0); i < 10; i++ {
		if err := WriteFrame(&buf, Request{ID: i, Op: OpExec, Name: "Q"}); err != nil {
			t.Fatalf("WriteFrame %d: %v", i, err)
		}
	}
	for i := uint64(0); i < 10; i++ {
		var got Request
		if err := ReadFrame(&buf, &got); err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if got.ID != i {
			t.Errorf("frame %d: got ID %d", i, got.ID)
		}
	}
}

func TestReadFrameEOFOnEmpty(t *testing.T) {
	var got Request
	err := ReadFrame(bytes.NewReader(nil), &got)
	if !errors.Is(err, io.EOF) {
		t.Errorf("want io.EOF, got %v", err)
	}
}

func TestReadFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Request{ID: 1, Op: OpExec}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	var got Request
	if err := ReadFrame(bytes.NewReader(trunc), &got); err == nil {
		t.Error("want error on truncated payload, got nil")
	}
}

func TestReadFrameOversizedHeaderRejected(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrameSize+1)
	var got Request
	err := ReadFrame(bytes.NewReader(hdr[:]), &got)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("want ErrFrameTooLarge, got %v", err)
	}
}

func TestWriteFrameOversizedRejected(t *testing.T) {
	big := Request{ID: 1, Op: OpExec, Value: strings.Repeat("x", MaxFrameSize)}
	err := WriteFrame(io.Discard, big)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("want ErrFrameTooLarge, got %v", err)
	}
}

func TestReadFrameGarbagePayload(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("this is not json")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	buf.Write(hdr[:])
	buf.Write(payload)
	var got Request
	if err := ReadFrame(&buf, &got); err == nil {
		t.Error("want error on garbage payload, got nil")
	}
}

// TestRoundTripProperty checks that any request survives a frame round trip.
func TestRoundTripProperty(t *testing.T) {
	f := func(id uint64, device, name, value, errStr string, args []string) bool {
		in := Request{ID: id, Op: OpExec, Device: device, Name: name, Args: args, Value: value, Error: errStr}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, in); err != nil {
			// Only oversized frames may fail; those are outside quick's
			// default value sizes.
			return false
		}
		var out Request
		if err := ReadFrame(&buf, &out); err != nil {
			return false
		}
		if out.ID != in.ID || out.Device != in.Device || out.Name != in.Name ||
			out.Value != in.Value || out.Error != in.Error || len(out.Args) != len(in.Args) {
			return false
		}
		for i := range in.Args {
			if out.Args[i] != in.Args[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
