package wire

import (
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

func TestWireParseProto(t *testing.T) {
	cases := []struct {
		in   string
		want Proto
		ok   bool
	}{
		{"", ProtoAuto, true}, {"auto", ProtoAuto, true},
		{"v1", ProtoV1, true}, {"json", ProtoV1, true},
		{"v2", ProtoV2, true}, {"binary", ProtoV2, true},
		{"v3", ProtoAuto, false}, {"V2", ProtoAuto, false},
	}
	for _, tc := range cases {
		got, err := ParseProto(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseProto(%q) = %v, %v", tc.in, got, err)
		}
	}
	if ProtoAuto.String() != "auto" || ProtoV1.String() != "v1" || ProtoV2.String() != "v2" {
		t.Error("Proto.String round trip broken")
	}
	if V1.String() != "v1" || V2.String() != "v2" {
		t.Error("Version.String round trip broken")
	}
}

// handshake runs Accept(allow) on one end of a pipe and client on the other,
// returning both negotiated Conns (or the server error).
func handshake(t *testing.T, allow Proto, client func(net.Conn) (*Conn, error)) (cli, srv *Conn, srvErr error) {
	t.Helper()
	cliConn, srvConn := net.Pipe()
	t.Cleanup(func() { cliConn.Close(); srvConn.Close() })
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv, srvErr = Accept(srvConn, allow, nil)
	}()
	var err error
	cli, err = client(cliConn)
	if err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Accept did not return")
	}
	return cli, srv, srvErr
}

func TestWireNegotiateV2UnderAuto(t *testing.T) {
	cli, srv, err := handshake(t, ProtoAuto, func(c net.Conn) (*Conn, error) { return ClientV2(c, nil) })
	if err != nil {
		t.Fatal(err)
	}
	if cli.Version() != V2 || srv.Version() != V2 {
		t.Fatalf("negotiated %s/%s, want v2/v2", cli.Version(), srv.Version())
	}
	// A frame flows over the upgraded connection (pipe needs both sides live).
	go func() { _ = cli.WriteFrame(Request{ID: 9, Op: OpPing}) }()
	var req Request
	if err := srv.ReadFrame(&req); err != nil || req.ID != 9 || req.Op != OpPing {
		t.Fatalf("frame over negotiated v2: %+v, %v", req, err)
	}
}

func TestWireNegotiateV1UnderAuto(t *testing.T) {
	// A v1 client sends no preamble: its first bytes are a frame. The server
	// must serve it unchanged, which is why the client's write is the
	// handshake here.
	cliConn, srvConn := net.Pipe()
	defer cliConn.Close()
	defer srvConn.Close()
	type res struct {
		srv *Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		srv, err := Accept(srvConn, ProtoAuto, nil)
		ch <- res{srv, err}
	}()
	cli := ClientV1(cliConn, nil)
	go func() { _ = cli.WriteFrame(Request{ID: 4, Op: OpPing}) }()
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.srv.Version() != V1 {
		t.Fatalf("negotiated %s, want v1", r.srv.Version())
	}
	var req Request
	if err := r.srv.ReadFrame(&req); err != nil || req.ID != 4 {
		t.Fatalf("v1 frame after sniff: %+v, %v", req, err)
	}
}

func TestWireNegotiateRequiredV2RejectsV1(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	defer cliConn.Close()
	defer srvConn.Close()
	errCh := make(chan error, 1)
	go func() {
		_, err := Accept(srvConn, ProtoV2, nil)
		errCh <- err
	}()
	go func() { _ = WriteFrame(cliConn, Request{ID: 1, Op: OpPing}) }()
	err := <-errCh
	if err == nil || !strings.Contains(err.Error(), "requires protocol v2") {
		t.Fatalf("v2-only listener accepting v1 bytes: err = %v", err)
	}
}

func TestWireNegotiatePinnedV1SkipsSniff(t *testing.T) {
	// Under ProtoV1 the server must not read (or wait for) any bytes before
	// the first frame — byte flow identical to the pre-v2 protocol.
	cliConn, srvConn := net.Pipe()
	defer cliConn.Close()
	defer srvConn.Close()
	ch := make(chan *Conn, 1)
	go func() {
		srv, err := Accept(srvConn, ProtoV1, nil)
		if err != nil {
			t.Error(err)
		}
		ch <- srv
	}()
	select {
	case srv := <-ch:
		if srv.Version() != V1 {
			t.Fatalf("pinned v1 listener negotiated %s", srv.Version())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Accept(ProtoV1) waited for client bytes")
	}
}

func TestWireNegotiateBadVersionByte(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	defer cliConn.Close()
	defer srvConn.Close()
	errCh := make(chan error, 1)
	go func() {
		_, err := Accept(srvConn, ProtoAuto, nil)
		errCh <- err
	}()
	go func() { _, _ = cliConn.Write([]byte{'R', 'A', 'D', '2', 99}) }()
	err := <-errCh
	if err == nil || !strings.Contains(err.Error(), "unsupported protocol version 99") {
		t.Fatalf("future version byte: err = %v", err)
	}

	// Magic prefix right, magic tail wrong.
	cliConn2, srvConn2 := net.Pipe()
	defer cliConn2.Close()
	defer srvConn2.Close()
	go func() {
		_, err := Accept(srvConn2, ProtoAuto, nil)
		errCh <- err
	}()
	go func() { _, _ = cliConn2.Write([]byte{'R', 'O', 'G', 'U', 'E'}) }()
	if err := <-errCh; err == nil || !strings.Contains(err.Error(), "bad preamble magic") {
		t.Fatalf("bad magic: err = %v", err)
	}
}

// TestWireNegotiateDeadConn kills the client at every point inside the
// handshake; Accept must return an error each time, never hang.
func TestWireNegotiateDeadConn(t *testing.T) {
	for _, sent := range []int{0, 1, 3} {
		cliConn, srvConn := net.Pipe()
		errCh := make(chan error, 1)
		go func() {
			_, err := Accept(srvConn, ProtoAuto, nil)
			errCh <- err
		}()
		if sent > 0 {
			if _, err := cliConn.Write(preamble[:sent]); err != nil {
				t.Fatal(err)
			}
		}
		_ = cliConn.Close()
		select {
		case err := <-errCh:
			if err == nil {
				t.Errorf("client died after %d preamble bytes: Accept returned nil error", sent)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("client died after %d preamble bytes: Accept hung", sent)
		}
		_ = srvConn.Close()
	}
}

// v1OnlyListener is a pre-v2 middlebox stand-in: it reads length-prefixed
// JSON frames directly off the socket and drops connections whose bytes do
// not parse — exactly what an unupgraded deployment does with a preamble.
func v1OnlyListener(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					var req Request
					if err := ReadFrame(conn, &req); err != nil {
						return
					}
					if err := WriteFrame(conn, Reply{ID: req.ID, Value: "pong"}); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// v2AwareListener serves both protocols via Accept, echoing pings.
func v2AwareListener(t *testing.T, allow Proto) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				wc, err := Accept(conn, allow, nil)
				if err != nil {
					return
				}
				for {
					var req Request
					if err := wc.ReadFrame(&req); err != nil {
						return
					}
					if err := wc.WriteFrame(Reply{ID: req.ID, Value: "pong"}); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

func roundTripPing(t *testing.T, wc *Conn) {
	t.Helper()
	if err := wc.WriteFrame(Request{ID: 1, Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	var rep Reply
	if err := wc.ReadFrame(&rep); err != nil || rep.Value != "pong" {
		t.Fatalf("ping reply %+v, %v", rep, err)
	}
}

// TestWireDialAutoFallsBackToV1 dials a JSON-only listener with ProtoAuto:
// the v2 handshake dies (the listener reads the preamble as an absurd frame
// length and hangs up) and the dialer redials as v1, invisibly to the
// caller.
func TestWireDialAutoFallsBackToV1(t *testing.T) {
	addr := v1OnlyListener(t)
	conn, wc, err := Dial(addr, ProtoAuto, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if wc.Version() != V1 {
		t.Fatalf("auto against v1-only listener negotiated %s", wc.Version())
	}
	roundTripPing(t, wc)
}

func TestWireDialAutoUpgradesToV2(t *testing.T) {
	addr := v2AwareListener(t, ProtoAuto)
	conn, wc, err := Dial(addr, ProtoAuto, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if wc.Version() != V2 {
		t.Fatalf("auto against v2-aware listener negotiated %s", wc.Version())
	}
	roundTripPing(t, wc)
}

func TestWireDialRequiredV2AgainstV1OnlyFails(t *testing.T) {
	addr := v1OnlyListener(t)
	conn, _, err := Dial(addr, ProtoV2, nil)
	if err == nil {
		conn.Close()
		t.Fatal("Dial(ProtoV2) against v1-only listener succeeded")
	}
}

func TestWireDialPinnedV1AgainstUpgradedListener(t *testing.T) {
	// The acceptance criterion in miniature: an unupgraded client against an
	// upgraded listener, no code changes, same bytes, same answers.
	addr := v2AwareListener(t, ProtoAuto)
	conn, wc, err := Dial(addr, ProtoV1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if wc.Version() != V1 {
		t.Fatalf("pinned v1 dial negotiated %s", wc.Version())
	}
	roundTripPing(t, wc)
}

// TestWireV2ReadFrameEOF: a cleanly closed v2 connection yields bare io.EOF
// from ReadFrame, same contract as the v1 reader.
func TestWireV2ReadFrameEOF(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	go func() {
		wc, err := ClientV2(cliConn, nil)
		if err == nil {
			_ = wc
		}
		cliConn.Close()
	}()
	wc, err := Accept(srvConn, ProtoAuto, nil)
	if err != nil {
		t.Fatal(err)
	}
	var req Request
	if err := wc.ReadFrame(&req); !errors.Is(err, io.EOF) {
		t.Fatalf("read on closed v2 conn: %v, want io.EOF", err)
	}
}
