package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"

	"rad/internal/power"
	"rad/internal/store"
)

// pair returns two Conns speaking version v to each other through in-memory
// buffers: what cli writes, srv reads, and vice versa.
func pair(v Version) (cli, srv *Conn) {
	var toSrv, toCli bytes.Buffer
	cli = NewConn(rwPair{r: &toCli, w: &toSrv}, v, nil)
	srv = NewConn(rwPair{r: &toSrv, w: &toCli}, v, nil)
	return cli, srv
}

type rwPair struct {
	r io.Reader
	w io.Writer
}

func (p rwPair) Read(b []byte) (int, error)  { return p.r.Read(b) }
func (p rwPair) Write(b []byte) (int, error) { return p.w.Write(b) }

// sampleRecord exercises every Record field, including a non-trivial zone
// offset and arguments outside the interned vocabulary.
func sampleRecord() *store.Record {
	loc := time.FixedZone("", -7*3600)
	return &store.Record{
		Seq:       91,
		Time:      time.Unix(0, 1633078800123456789).In(loc),
		EndTime:   time.Unix(0, 1633078800987654321).In(loc),
		Device:    "UR3e",
		Name:      "move_joints",
		Args:      []string{"0.5", "-1.2", "ünïcödé", ""},
		Response:  "ok",
		Exception: "front door crashed",
		Procedure: "P2",
		Run:       "2021-10-01-a",
		Mode:      "DIRECT",
	}
}

func TestBinaryFrameRoundTrip(t *testing.T) {
	frames := []any{
		&Request{ID: 7, Op: OpExec, Device: "C9", Name: "ARM", Args: []string{"10", "20", "30"},
			Value: "ok", Error: "boom", StartNanos: 100, EndNanos: -250, Procedure: "P1", Run: "r1"},
		&Request{}, // all fields zero: one type byte on the wire
		&Reply{ID: 3, Value: "MVNG 0 0 0 0", Error: "nope"},
		&Subscribe{Op: OpSubscribe, Name: "watch", Device: "UR3e", Key: "UR3e.movej",
			Procedure: "P4", Run: "r2", Snapshot: true, Power: true, Policy: PolicyBlock, Buffer: 128},
		&Event{Kind: EventTrace, Record: sampleRecord(), Dropped: 4},
		&Event{Kind: EventPower, Sample: &power.Sample{
			Time:   time.Unix(0, 1633078801000000000).UTC(),
			Values: []float64{0.25, -1.5, 3.75, 0, 1e-9, 1e9},
		}},
		&Event{Kind: EventSnapshotEnd},
		&Event{Kind: EventError, Error: "subscription failed"},
	}
	for _, in := range frames {
		t.Run(fmt.Sprintf("%T", in), func(t *testing.T) {
			cli, srv := pair(V2)
			if err := cli.WriteFrame(in); err != nil {
				t.Fatalf("WriteFrame: %v", err)
			}
			out := reflect.New(reflect.TypeOf(in).Elem()).Interface()
			if err := srv.ReadFrame(out); err != nil {
				t.Fatalf("ReadFrame: %v", err)
			}
			if !reflect.DeepEqual(out, in) {
				t.Errorf("round trip mismatch:\n got %+v\nwant %+v", out, in)
			}
		})
	}
}

// TestBinaryFrameTimeSemantics pins what the v2 time codec preserves: the
// instant and the zone offset — exactly what v1's RFC 3339 round trip keeps.
func TestBinaryFrameTimeSemantics(t *testing.T) {
	in := time.Date(2021, 10, 1, 9, 30, 0, 123456789, time.FixedZone("PDT", -7*3600))
	cli, srv := pair(V2)
	if err := cli.WriteFrame(&Event{Kind: EventTrace, Record: &store.Record{Time: in}}); err != nil {
		t.Fatal(err)
	}
	var out Event
	if err := srv.ReadFrame(&out); err != nil {
		t.Fatal(err)
	}
	got := out.Record.Time
	if !got.Equal(in) {
		t.Errorf("instant not preserved: got %v want %v", got, in)
	}
	_, wantOff := in.Zone()
	if _, off := got.Zone(); off != wantOff {
		t.Errorf("zone offset = %d, want %d", off, wantOff)
	}
	// The zero time is omitted and decodes back to the zero time, not 1970.
	if err := cli.WriteFrame(&Event{Kind: EventTrace, Record: &store.Record{}}); err != nil {
		t.Fatal(err)
	}
	if err := srv.ReadFrame(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Record.Time.IsZero() {
		t.Errorf("zero time decoded as %v", out.Record.Time)
	}
}

// TestBinaryFrameTypeMismatch: a frame decoded into the wrong message type
// is a precise protocol error, not a half-filled struct.
func TestBinaryFrameTypeMismatch(t *testing.T) {
	cli, srv := pair(V2)
	if err := cli.WriteFrame(Request{ID: 1, Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	var rep Reply
	err := srv.ReadFrame(&rep)
	if err == nil || !strings.Contains(err.Error(), "want reply") {
		t.Errorf("type mismatch err = %v", err)
	}
}

// TestBinaryFrameMalformedPayloads drives the decoder's length validation:
// truncated varints, lying lengths, and unknown tags must all produce clean
// errors without over-allocating.
func TestBinaryFrameMalformedPayloads(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"unknown type", []byte{0x7f}},
		{"unknown tag", []byte{binRequest, 0x63}},
		{"truncated uvarint", []byte{binRequest, reqID, 0x80}},
		{"string length lies", []byte{binRequest, reqDevice, 0x7f, 'C'}},
		{"slice count lies", []byte{binRequest, reqArgs, 0x7f, 0x01, 'x'}},
		{"float count lies", []byte{binEvent, evSample, sampValues, 0x7f, 1, 2, 3}},
		{"zone offset absurd", append(append([]byte{binEvent, evRecord, recTime},
			binary.AppendVarint(nil, 1)...), binary.AppendVarint(nil, 1<<40)...)},
		{"trailing bytes", []byte{binReply, repID, 0x01, 0, 0xff}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var req Request
			var ev Event
			var rep Reply
			dst := map[byte]any{binRequest: &req, binEvent: &ev, binReply: &rep}[firstByte(tc.payload)]
			if dst == nil {
				dst = &req
			}
			if err := decodeBinaryFrame(tc.payload, dst); err == nil {
				t.Errorf("decode %x: want error, got nil", tc.payload)
			}
		})
	}
}

func firstByte(b []byte) byte {
	if len(b) == 0 {
		return 0
	}
	return b[0]
}

// TestWireCrossVersionBytes pins the failure mode each reader shows the
// other protocol's bytes: deterministic, clean errors — never a hang, a
// panic, or a giant allocation.
func TestWireCrossVersionBytes(t *testing.T) {
	// A v2 frame's first byte is its uvarint payload length (>= 1), so a v1
	// reader parses the first four bytes as a big-endian length >= 1<<24 and
	// rejects the frame as oversized.
	var v2bytes bytes.Buffer
	v2conn := NewConn(&v2bytes, V2, nil)
	if err := v2conn.WriteFrame(Request{ID: 1, Op: OpExec, Device: "C9", Name: "ARM"}); err != nil {
		t.Fatal(err)
	}
	var req Request
	err := ReadFrame(bytes.NewReader(v2bytes.Bytes()), &req)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("v1 reader on v2 bytes: err = %v, want ErrFrameTooLarge", err)
	}

	// A v1 frame opens with 0x00 (MaxFrameSize fits in three bytes), which a
	// v2 reader parses as a zero-length frame: an empty-frame error.
	var v1bytes bytes.Buffer
	if err := WriteFrame(&v1bytes, Request{ID: 1, Op: OpExec}); err != nil {
		t.Fatal(err)
	}
	v2reader := NewConn(bytes.NewBuffer(v1bytes.Bytes()), V2, nil)
	err = v2reader.ReadFrame(&req)
	if err == nil || !strings.Contains(err.Error(), "empty binary frame") {
		t.Errorf("v2 reader on v1 bytes: err = %v, want empty-frame error", err)
	}
}

// TestWireInternSharesVocabulary: decoding a protocol-vocabulary string
// yields the shared instance; unknown strings still decode correctly.
func TestWireInternSharesVocabulary(t *testing.T) {
	if got := intern([]byte("DIRECT")); got != "DIRECT" {
		t.Errorf("intern(DIRECT) = %q", got)
	}
	if got := intern([]byte("not-in-the-catalog")); got != "not-in-the-catalog" {
		t.Errorf("intern(unknown) = %q", got)
	}
	if got := intern(nil); got != "" {
		t.Errorf("intern(nil) = %q", got)
	}
}

// TestFrameGrowPathPowerOfTwo pins the satellite fix: pooled read buffers
// grow to the next power of two up to the pool's limit, and exactly-sized
// above it (an oversize one-off must not poison the pool's growth pattern).
func TestFrameGrowPathPowerOfTwo(t *testing.T) {
	cases := []struct {
		n, wantCap int
	}{
		{1, 1},
		{2, 2},
		{3, 4},
		{100, 128},
		{4097, 8192},
		{pooledLimit - 1, pooledLimit},
		{pooledLimit, pooledLimit},
		{pooledLimit + 1, pooledLimit + 1}, // above the pool gate: exact
		{MaxFrameSize, MaxFrameSize},
	}
	for _, tc := range cases {
		var buf []byte
		got := sizeBuf(&buf, tc.n)
		if len(got) != tc.n {
			t.Errorf("sizeBuf(%d): len = %d", tc.n, len(got))
		}
		if cap(buf) != tc.wantCap {
			t.Errorf("sizeBuf(%d): cap = %d, want %d", tc.n, cap(buf), tc.wantCap)
		}
	}
	// Growth reuses a buffer that is already big enough.
	buf := make([]byte, 0, 256)
	_ = sizeBuf(&buf, 100)
	if cap(buf) != 256 {
		t.Errorf("sizeBuf shrank a sufficient buffer to cap %d", cap(buf))
	}
}

// TestFrameTooLargeAnnouncesSize pins the satellite fix to the error text:
// the announced size appears in the message, for both protocol readers.
func TestFrameTooLargeAnnouncesSize(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrameSize+7)
	var req Request
	err := ReadFrame(bytes.NewReader(hdr[:]), &req)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	want := fmt.Sprintf("announced %d bytes", MaxFrameSize+7)
	if !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not carry the announced size %q", err, want)
	}

	v2hdr := binary.AppendUvarint(nil, MaxFrameSize+7)
	v2conn := NewConn(bytes.NewBuffer(v2hdr), V2, nil)
	err = v2conn.ReadFrame(&req)
	if !errors.Is(err, ErrFrameTooLarge) || !strings.Contains(err.Error(), want) {
		t.Errorf("v2 reader: err = %v, want ErrFrameTooLarge with %q", err, want)
	}
}

// TestWireV2OversizedWriteRejected: the v2 writer enforces MaxFrameSize on
// the encoded payload just as the v1 writer does.
func TestWireV2OversizedWriteRejected(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf, V2, nil)
	err := c.WriteFrame(Request{Value: strings.Repeat("x", MaxFrameSize+1)})
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("want ErrFrameTooLarge, got %v", err)
	}
}

// TestWireV1ConnMatchesFreeFunctions: a V1 Conn emits byte-identical frames
// to the pre-negotiation free functions — the compatibility the mixed-fleet
// guarantee rests on.
func TestWireV1ConnMatchesFreeFunctions(t *testing.T) {
	req := Request{ID: 5, Op: OpExec, Device: "C9", Name: "ARM", Args: []string{"1", "2"}}
	var viaConn, viaFree bytes.Buffer
	if err := NewConn(&viaConn, V1, nil).WriteFrame(req); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&viaFree, req); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaConn.Bytes(), viaFree.Bytes()) {
		t.Errorf("V1 Conn frame differs from free-function frame:\n% x\n% x",
			viaConn.Bytes(), viaFree.Bytes())
	}
	var got Request
	if err := ReadFrame(&viaConn, &got); err != nil {
		t.Fatalf("free ReadFrame on Conn bytes: %v", err)
	}
}

// BenchmarkWireExecV2 prices one full exec exchange — request encoded and
// decoded, reply encoded and decoded — through both codecs over in-memory
// connections, isolating the marshalling tax the v2 protocol removes. The
// TCP round trip (socket included) is benchmarked in internal/tracer.
func BenchmarkWireExecV2(b *testing.B) {
	req := Request{ID: 1, Op: OpExec, Device: "UR3e", Name: "move_joints",
		Args: []string{"0.5", "-1.2", "0.8", "0.0", "1.1", "-0.3"}, Procedure: "P2", Run: "bench"}
	rep := Reply{ID: 1, Value: "MVNG 0.5 -1.2 0.8 0.0 1.1 -0.3"}
	for _, v := range []Version{V1, V2} {
		name := map[Version]string{V1: "v1-json", V2: "v2-binary"}[v]
		b.Run(name, func(b *testing.B) {
			cli, srv := pair(v)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := cli.WriteFrame(req); err != nil {
					b.Fatal(err)
				}
				var gotReq Request
				if err := srv.ReadFrame(&gotReq); err != nil {
					b.Fatal(err)
				}
				if err := srv.WriteFrame(rep); err != nil {
					b.Fatal(err)
				}
				var gotRep Reply
				if err := cli.ReadFrame(&gotRep); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWireEventV2 prices the tail path's hot frame: a trace event
// carrying a full record.
func BenchmarkWireEventV2(b *testing.B) {
	ev := Event{Kind: EventTrace, Record: sampleRecord()}
	for _, v := range []Version{V1, V2} {
		name := map[Version]string{V1: "v1-json", V2: "v2-binary"}[v]
		b.Run(name, func(b *testing.B) {
			cli, srv := pair(v)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := cli.WriteFrame(ev); err != nil {
					b.Fatal(err)
				}
				var got Event
				if err := srv.ReadFrame(&got); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
