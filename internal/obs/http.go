package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// MuxOptions extends the telemetry mux with the endpoints whose state lives
// outside the registry. Both fields are optional.
type MuxOptions struct {
	// Health backs /healthz: return true while the process should receive
	// traffic, false once draining has begun. Nil serves a plain always-200
	// /healthz — a process with no drain notion is healthy while it is up.
	Health func() bool
	// Spans, when set, is mounted at /debug/spans (span.Handler over the
	// process's flight recorder).
	Spans http.Handler
}

// ServeMux builds the live telemetry endpoint over a registry:
//
//	/metrics        Prometheus text exposition
//	/snapshot       the JSON Snapshot (radwatch -obs polls this)
//	/healthz        200 while serving, 503 once draining
//	/debug/pprof/   the standard Go profiling handlers
//	/               a plain-text index of the above
//
// radmiddlebox mounts this on -obs-addr; anything that can scrape
// Prometheus or hit an HTTP endpoint can watch the middlebox live.
func ServeMux(r *Registry) *http.ServeMux {
	return ServeMuxWith(r, MuxOptions{})
}

// ServeMuxWith is ServeMux plus the optional health and span endpoints.
func ServeMuxWith(r *Registry, opts MuxOptions) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if opts.Health != nil && !opts.Health() {
			// Draining: tell the orchestrator to stop routing here before
			// SIGTERM severs the remaining connections.
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte("draining\n"))
			return
		}
		_, _ = w.Write([]byte("ok\n"))
	})
	if opts.Spans != nil {
		mux.Handle("/debug/spans", opts.Spans)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		index := "rad observability endpoint\n\n  /metrics       Prometheus text exposition\n  /snapshot      JSON metrics snapshot\n  /healthz       readiness (503 while draining)\n"
		if opts.Spans != nil {
			index += "  /debug/spans   recent trace trees (JSON; ?format=text)\n"
		}
		index += "  /debug/pprof/  Go profiling\n"
		_, _ = w.Write([]byte(index))
	})
	return mux
}
