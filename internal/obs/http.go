package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// ServeMux builds the live telemetry endpoint over a registry:
//
//	/metrics        Prometheus text exposition
//	/snapshot       the JSON Snapshot (radwatch -obs polls this)
//	/debug/pprof/   the standard Go profiling handlers
//	/               a plain-text index of the above
//
// radmiddlebox mounts this on -obs-addr; anything that can scrape
// Prometheus or hit an HTTP endpoint can watch the middlebox live.
func ServeMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("rad observability endpoint\n\n  /metrics       Prometheus text exposition\n  /snapshot      JSON metrics snapshot\n  /debug/pprof/  Go profiling\n"))
	})
	return mux
}
