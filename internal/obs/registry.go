package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind is a metric family's type, as rendered in the Prometheus # TYPE
// line.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// entry is one registered metric child: a family name plus a fixed label
// set, bound to exactly one of the value holders. Pull-based children
// (cfn/gfn) read their value at render time, so instrumented subsystems
// that already keep atomic counters expose them with zero added hot-path
// cost.
type entry struct {
	name   string
	labels []label
	id     string // name + rendered label block; the registry key
	kind   Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	cfn     func() uint64
	gfn     func() float64
}

type label struct{ key, value string }

// Registry holds named metrics and renders them. All methods are safe for
// concurrent use; registration is idempotent (re-registering an existing
// name+label set returns the existing metric, or — for the func variants —
// replaces the callback, so subsystems that rebuild state, like the
// middlebox's per-device breakers, can re-register on every rebuild).
type Registry struct {
	mu      sync.RWMutex
	byID    map[string]*entry
	kinds   map[string]Kind   // family name -> kind, enforced across children
	help    map[string]string // family name -> # HELP text
	ordered []*entry          // sorted by (name, id); rebuilt lazily
	dirty   bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byID:  make(map[string]*entry),
		kinds: make(map[string]Kind),
		help:  make(map[string]string),
	}
}

// SetHelp attaches a # HELP line to a metric family.
func (r *Registry) SetHelp(name, text string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = text
}

// Counter returns the counter registered under name and the given
// key/value label pairs, creating it on first use.
func (r *Registry) Counter(name string, kv ...string) *Counter {
	var c *Counter
	r.register(name, KindCounter, kv, func(e *entry) {
		if e.counter == nil && e.cfn == nil {
			e.counter = newCounter()
		}
		if e.counter == nil {
			panic("obs: " + e.id + " is registered as a pull-based counter")
		}
		c = e.counter
	})
	return c
}

// CounterFunc registers a pull-based counter: fn is read at render time.
// Re-registering the same name+labels replaces the callback.
func (r *Registry) CounterFunc(name string, fn func() uint64, kv ...string) {
	r.register(name, KindCounter, kv, func(e *entry) {
		if e.counter != nil {
			panic("obs: " + e.id + " is registered as a direct counter")
		}
		e.cfn = fn
	})
}

// Gauge returns the gauge registered under name and the given label pairs,
// creating it on first use.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	var g *Gauge
	r.register(name, KindGauge, kv, func(e *entry) {
		if e.gauge == nil && e.gfn == nil {
			e.gauge = &Gauge{}
		}
		if e.gauge == nil {
			panic("obs: " + e.id + " is registered as a pull-based gauge")
		}
		g = e.gauge
	})
	return g
}

// GaugeFunc registers a pull-based gauge: fn is read at render time.
// Re-registering the same name+labels replaces the callback.
func (r *Registry) GaugeFunc(name string, fn func() float64, kv ...string) {
	r.register(name, KindGauge, kv, func(e *entry) {
		if e.gauge != nil {
			panic("obs: " + e.id + " is registered as a direct gauge")
		}
		e.gfn = fn
	})
}

// Histogram returns the histogram registered under name and the given
// label pairs, creating it on first use with the given bucket upper bounds
// (nil selects DefaultLatencyBuckets). Buckets are fixed at creation;
// re-registration returns the existing histogram unchanged.
func (r *Registry) Histogram(name string, buckets []time.Duration, kv ...string) *Histogram {
	var h *Histogram
	r.register(name, KindHistogram, kv, func(e *entry) {
		if e.hist == nil {
			e.hist = newHistogram(buckets)
		}
		h = e.hist
	})
	return h
}

// Unregister removes the metric child with the given name and label set,
// reporting whether it existed. Used by dynamic children (per-subscriber
// stream gauges) whose subjects come and go.
func (r *Registry) Unregister(name string, kv ...string) bool {
	id := metricID(name, parseLabels(name, kv))
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byID[id]; !ok {
		return false
	}
	delete(r.byID, id)
	r.dirty = true
	for _, e := range r.byID {
		if e.name == name {
			return true
		}
	}
	// Last child of the family: release its kind and help so the name can
	// be registered afresh (even as a different kind) after churn.
	delete(r.kinds, name)
	delete(r.help, name)
	return true
}

// register finds or creates the entry for name+labels, enforcing one kind
// per family, then invokes bind on it while r.mu is still held — so an
// entry is never visible to a render without its holder or callback set,
// and two racing creators of the same child bind against one entry. A new
// entry is published only after bind returns, so a panicking bind (kind
// conflict) leaves no half-registered child behind.
func (r *Registry) register(name string, kind Kind, kv []string, bind func(*entry)) {
	labels := parseLabels(name, kv)
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	e, existing := r.byID[id]
	if existing {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: %s already registered as a %s, not a %s", id, e.kind, kind))
		}
	} else {
		if k, ok := r.kinds[name]; ok && k != kind {
			panic(fmt.Sprintf("obs: family %s already registered as a %s, not a %s", name, k, kind))
		}
		e = &entry{name: name, labels: labels, id: id, kind: kind}
	}
	bind(e)
	if !existing {
		r.kinds[name] = kind
		r.byID[id] = e
		r.dirty = true
	}
}

// entries returns the registered children sorted by family name then label
// block — the deterministic render order both expositions share.
func (r *Registry) entries() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dirty {
		r.ordered = make([]*entry, 0, len(r.byID))
		for _, e := range r.byID {
			r.ordered = append(r.ordered, e)
		}
		sort.Slice(r.ordered, func(i, j int) bool {
			if r.ordered[i].name != r.ordered[j].name {
				return r.ordered[i].name < r.ordered[j].name
			}
			return r.ordered[i].id < r.ordered[j].id
		})
		r.dirty = false
	}
	return r.ordered
}

// helpFor returns the family's # HELP text, if set.
func (r *Registry) helpFor(name string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.help[name]
}

// parseLabels validates and pairs up a variadic key/value list.
func parseLabels(name string, kv []string) []label {
	if len(kv)%2 != 0 {
		panic("obs: " + name + ": odd label key/value list")
	}
	if len(kv) == 0 {
		return nil
	}
	labels := make([]label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		if kv[i] == "" {
			panic("obs: " + name + ": empty label key")
		}
		if !validLabelName(kv[i]) {
			panic("obs: " + name + ": invalid label key " + kv[i])
		}
		labels = append(labels, label{key: kv[i], value: kv[i+1]})
	}
	sort.SliceStable(labels, func(i, j int) bool { return labels[i].key < labels[j].key })
	for i := 1; i < len(labels); i++ {
		if labels[i].key == labels[i-1].key {
			panic("obs: " + name + ": duplicate label key " + labels[i].key)
		}
	}
	return labels
}

// validLabelName applies the Prometheus label-name grammar
// [a-zA-Z_][a-zA-Z0-9_]*: label keys are rendered unescaped into the
// exposition, so a key outside the grammar would corrupt every scrape.
func validLabelName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return len(s) > 0
}

// metricID renders the canonical child identity: the family name plus the
// sorted, escaped label block (empty when there are no labels).
func metricID(name string, labels []label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteString(labelBlock(labels, ""))
	return b.String()
}

// labelBlock renders {k="v",...} with an optional extra label appended
// verbatim (the histogram le bucket label). Returns "" for an empty set.
func labelBlock(labels []label, extra string) string {
	if len(labels) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.value))
		b.WriteByte('"')
	}
	if extra != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the Prometheus label-value escaping rules.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
