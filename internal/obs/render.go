package obs

import (
	"bufio"
	"io"
	"strconv"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (text/plain; version=0.0.4): families sorted by name
// with one # TYPE line each, children sorted by label block, histograms as
// cumulative _bucket{le=...} series plus _sum and _count. Values observed
// concurrently with the render are individually exact; see the package
// comment for the cross-metric consistency contract.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	lastFamily := ""
	for _, e := range r.entries() {
		if e.name != lastFamily {
			if help := r.helpFor(e.name); help != "" {
				bw.WriteString("# HELP ")
				bw.WriteString(e.name)
				bw.WriteByte(' ')
				bw.WriteString(help)
				bw.WriteByte('\n')
			}
			bw.WriteString("# TYPE ")
			bw.WriteString(e.name)
			bw.WriteByte(' ')
			bw.WriteString(e.kind.String())
			bw.WriteByte('\n')
			lastFamily = e.name
		}
		switch e.kind {
		case KindCounter:
			bw.WriteString(e.name)
			bw.WriteString(labelBlock(e.labels, ""))
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatUint(e.counterValue(), 10))
			bw.WriteByte('\n')
		case KindGauge:
			bw.WriteString(e.name)
			bw.WriteString(labelBlock(e.labels, ""))
			bw.WriteByte(' ')
			bw.WriteString(formatFloat(e.gaugeValue()))
			bw.WriteByte('\n')
		case KindHistogram:
			writeHistogram(bw, e)
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram child: cumulative buckets, sum in
// seconds, and the derived count.
func writeHistogram(bw *bufio.Writer, e *entry) {
	counts := e.hist.counts()
	var cum uint64
	for i, c := range counts {
		cum += c
		le := "+Inf"
		if i < len(e.hist.bounds) {
			le = formatFloat(float64(e.hist.bounds[i]) / 1e9)
		}
		bw.WriteString(e.name)
		bw.WriteString("_bucket")
		bw.WriteString(labelBlock(e.labels, `le="`+le+`"`))
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatUint(cum, 10))
		bw.WriteByte('\n')
	}
	bw.WriteString(e.name)
	bw.WriteString("_sum")
	bw.WriteString(labelBlock(e.labels, ""))
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(float64(e.hist.Sum()) / 1e9))
	bw.WriteByte('\n')
	bw.WriteString(e.name)
	bw.WriteString("_count")
	bw.WriteString(labelBlock(e.labels, ""))
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(cum, 10))
	bw.WriteByte('\n')
}

// counterValue reads a counter child, direct or pull-based.
func (e *entry) counterValue() uint64 {
	if e.cfn != nil {
		return e.cfn()
	}
	return e.counter.Value()
}

// gaugeValue reads a gauge child, direct or pull-based.
func (e *entry) gaugeValue() float64 {
	if e.gfn != nil {
		return e.gfn()
	}
	return float64(e.gauge.Value())
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trippable representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatTraceID renders an exemplar trace id as the 16-hex-digit form
// /debug/spans uses, so the two surfaces cross-reference directly.
func formatTraceID(id uint64) string {
	s := strconv.FormatUint(id, 16)
	if n := 16 - len(s); n > 0 {
		s = "0000000000000000"[:n] + s
	}
	return s
}

// Snapshot is the JSON shape of a registry render — the /snapshot endpoint
// and the radwatch -obs payload.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// CounterSnapshot is one counter child's point-in-time value.
type CounterSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  uint64            `json:"value"`
}

// GaugeSnapshot is one gauge child's point-in-time value.
type GaugeSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// HistogramSnapshot is one histogram child's cumulative bucket counts.
type HistogramSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Count  uint64            `json:"count"`
	// SumSeconds is the total observed duration in seconds.
	SumSeconds float64  `json:"sumSeconds"`
	Buckets    []Bucket `json:"buckets"`
}

// Bucket is one cumulative histogram bucket. UpperNanos is -1 for the
// overflow (+Inf) bucket; LE carries the Prometheus-style bound for
// display.
type Bucket struct {
	LE         string `json:"le"`
	UpperNanos int64  `json:"upperNanos"`
	Count      uint64 `json:"count"` // cumulative
	// ExemplarTraceID links this bucket to a recent traced observation: the
	// 16-hex-digit trace id of the last ObserveExemplar that landed here,
	// resolvable on /debug/spans. Empty when the bucket has never seen a
	// traced observation.
	ExemplarTraceID string `json:"exemplarTraceId,omitempty"`
}

// Quantile estimates the q-quantile (0 < q < 1) from the cumulative
// buckets by linear interpolation within the bucket that crosses the rank,
// Prometheus histogram_quantile-style. Returns 0 when the histogram is
// empty; ranks landing in the overflow bucket report the last finite
// bound (the estimate saturates).
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Buckets) == 0 {
		return 0
	}
	rank := q * float64(h.Count)
	var prevCum uint64
	var prevBound float64
	for _, b := range h.Buckets {
		if b.UpperNanos < 0 { // overflow: saturate at the last finite bound
			return prevBound
		}
		upper := float64(b.UpperNanos) / 1e9
		if float64(b.Count) >= rank {
			inBucket := float64(b.Count - prevCum)
			if inBucket == 0 {
				return upper
			}
			return prevBound + (upper-prevBound)*((rank-float64(prevCum))/inBucket)
		}
		prevCum = b.Count
		prevBound = upper
	}
	return prevBound
}

// Snapshot renders every registered metric into the JSON-friendly
// structure, in the same deterministic order as WritePrometheus.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	for _, e := range r.entries() {
		labels := labelMap(e.labels)
		switch e.kind {
		case KindCounter:
			s.Counters = append(s.Counters, CounterSnapshot{Name: e.name, Labels: labels, Value: e.counterValue()})
		case KindGauge:
			s.Gauges = append(s.Gauges, GaugeSnapshot{Name: e.name, Labels: labels, Value: e.gaugeValue()})
		case KindHistogram:
			counts := e.hist.counts()
			exemplars := e.hist.Exemplars()
			hs := HistogramSnapshot{
				Name: e.name, Labels: labels,
				SumSeconds: float64(e.hist.Sum()) / 1e9,
				Buckets:    make([]Bucket, 0, len(counts)),
			}
			var cum uint64
			for i, c := range counts {
				cum += c
				b := Bucket{LE: "+Inf", UpperNanos: -1, Count: cum}
				if i < len(e.hist.bounds) {
					b.LE = formatFloat(float64(e.hist.bounds[i]) / 1e9)
					b.UpperNanos = e.hist.bounds[i]
				}
				if id := exemplars[i]; id != 0 {
					b.ExemplarTraceID = formatTraceID(id)
				}
				hs.Buckets = append(hs.Buckets, b)
			}
			hs.Count = cum
			s.Histograms = append(s.Histograms, hs)
		}
	}
	return s
}

func labelMap(labels []label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.key] = l.value
	}
	return m
}
