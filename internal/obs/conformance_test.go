package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"
)

// healthGet issues GET /healthz against a mux and returns status and body.
func healthGet(t *testing.T, mux *http.ServeMux) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	body, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, string(body)
}

// TestObsPrometheusConformance pins the text exposition format over a fully
// instrumented registry — counters with and without labels, pull-based
// families, and a histogram — against a golden render, then checks the two
// format invariants scrape tooling depends on: each family announced
// exactly once, and every line lexing as valid exposition syntax.
func TestObsPrometheusConformance(t *testing.T) {
	reg := NewRegistry()
	reg.SetHelp("conf_reqs_total", "Requests handled.")
	reg.Counter("conf_reqs_total", "op", "exec").Add(3)
	reg.Counter("conf_reqs_total", "op", "trace").Add(1)
	reg.Gauge("conf_depth").Set(-2)
	reg.CounterFunc("conf_pull_total", func() uint64 { return 9 })
	reg.GaugeFunc("conf_ratio", func() float64 { return 0.25 })
	reg.Counter(`conf_escaped_total`, "path", "a\\b\"c\nd").Inc()
	h := reg.Histogram("conf_lat_seconds", []time.Duration{time.Millisecond, time.Second})
	h.Observe(500 * time.Microsecond)
	h.ObserveExemplar(2*time.Second, 0xabc)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	golden := `# TYPE conf_depth gauge
conf_depth -2
# TYPE conf_escaped_total counter
conf_escaped_total{path="a\\b\"c\nd"} 1
# TYPE conf_lat_seconds histogram
conf_lat_seconds_bucket{le="0.001"} 1
conf_lat_seconds_bucket{le="1"} 1
conf_lat_seconds_bucket{le="+Inf"} 2
conf_lat_seconds_sum 2.0005
conf_lat_seconds_count 2
# TYPE conf_pull_total counter
conf_pull_total 9
# TYPE conf_ratio gauge
conf_ratio 0.25
# HELP conf_reqs_total Requests handled.
# TYPE conf_reqs_total counter
conf_reqs_total{op="exec"} 3
conf_reqs_total{op="trace"} 1
`
	if got != golden {
		t.Fatalf("exposition drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}

	// Each family must carry exactly one # TYPE line, and HELP must precede
	// TYPE — scrapers treat a repeated family announcement as a parse error.
	seen := map[string]bool{}
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	for i, line := range lines {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		fam := strings.Fields(line)[2]
		if seen[fam] {
			t.Fatalf("family %q announced twice", fam)
		}
		seen[fam] = true
		if i > 0 && strings.HasPrefix(lines[i-1], "# HELP ") {
			if strings.Fields(lines[i-1])[2] != fam {
				t.Fatalf("HELP/TYPE family mismatch at line %d", i)
			}
		}
	}

	// Every sample line must lex as exposition syntax: a valid metric name,
	// an optional label block with valid label names, and a float value.
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{([a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? -?[0-9+.eEIinf]+$`)
	for _, line := range lines {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sample.MatchString(line) {
			t.Fatalf("sample line fails exposition lexing: %q", line)
		}
	}

	// Label names must reject characters outside [a-zA-Z0-9_]; the registry
	// enforces this at registration time by panicking.
	for _, bad := range []string{"bad-key", "0lead", "sp ace", ""} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("label key %q accepted", bad)
				}
			}()
			NewRegistry().Counter("conf_x_total", bad, "v")
		}()
	}
}

// TestObsHealthzDrainAware pins the /healthz contract: 200 while the health
// callback reports serving, 503 the moment it reports draining, and plain
// 200 when no callback is wired.
func TestObsHealthzDrainAware(t *testing.T) {
	serving := true
	mux := ServeMuxWith(NewRegistry(), MuxOptions{Health: func() bool { return serving }})

	if code, body := healthGet(t, mux); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("serving healthz = %d %q", code, body)
	}
	serving = false
	if code, body := healthGet(t, mux); code != 503 || !strings.Contains(body, "draining") {
		t.Fatalf("draining healthz = %d %q", code, body)
	}

	plain := ServeMux(NewRegistry())
	if code, _ := healthGet(t, plain); code != 200 {
		t.Fatalf("default healthz = %d", code)
	}
}

// TestObsRuntimeMetrics checks the Go runtime telemetry families render
// with plausible live values.
func TestObsRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, fam := range []string{
		"rad_go_goroutines", "rad_go_heap_inuse_bytes", "rad_go_heap_alloc_bytes",
		"rad_go_gc_pause_p99_seconds", "rad_go_gc_cycles_total",
	} {
		if !strings.Contains(out, "# TYPE "+fam+" ") {
			t.Fatalf("runtime family %q missing:\n%s", fam, out)
		}
	}
	snap := reg.Snapshot()
	found := false
	for _, g := range snap.Gauges {
		if g.Name == "rad_go_goroutines" {
			found = true
			if g.Value < 1 {
				t.Fatalf("goroutines = %v", g.Value)
			}
		}
	}
	if !found {
		t.Fatal("rad_go_goroutines missing from snapshot")
	}
}
