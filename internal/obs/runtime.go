package obs

import (
	"runtime"
	"sort"
	"sync"
)

// gcPauseWindow is how many recent GC pauses the p99 estimate covers —
// matches the depth of runtime.MemStats' own PauseNs ring.
const gcPauseWindow = 256

// runtimeSampler serializes runtime.MemStats reads: ReadMemStats stops the
// world briefly, so the pull-based families share one mutex-guarded buffer
// rather than each racing its own read during a render.
type runtimeSampler struct {
	mu sync.Mutex
	ms runtime.MemStats
}

func (s *runtimeSampler) read() runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	runtime.ReadMemStats(&s.ms)
	return s.ms
}

// gcPauseP99 estimates the 99th-percentile GC pause over the pauses still
// held in the MemStats ring (up to gcPauseWindow), in seconds.
func gcPauseP99(ms *runtime.MemStats) float64 {
	n := int(ms.NumGC)
	if n == 0 {
		return 0
	}
	if n > gcPauseWindow {
		n = gcPauseWindow
	}
	pauses := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		pauses = append(pauses, ms.PauseNs[(int(ms.NumGC)-1-i)%len(ms.PauseNs)])
	}
	sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
	idx := (len(pauses)*99 + 99) / 100 // ceil rank
	if idx > len(pauses) {
		idx = len(pauses)
	}
	return float64(pauses[idx-1]) / 1e9
}

// RegisterRuntimeMetrics adds Go runtime telemetry to the registry:
//
//	rad_go_goroutines            current goroutine count
//	rad_go_heap_inuse_bytes      bytes in in-use heap spans
//	rad_go_heap_alloc_bytes      bytes of allocated heap objects
//	rad_go_gc_pause_p99_seconds  p99 GC pause over the last 256 cycles
//	rad_go_gc_cycles_total       completed GC cycles
//
// All pull-based (GaugeFunc/CounterFunc): the process pays nothing between
// scrapes. Idempotent per registry, like every registration.
func RegisterRuntimeMetrics(r *Registry) {
	s := &runtimeSampler{}
	r.SetHelp("rad_go_goroutines", "Current number of goroutines.")
	r.GaugeFunc("rad_go_goroutines", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.SetHelp("rad_go_heap_inuse_bytes", "Bytes in in-use heap spans.")
	r.GaugeFunc("rad_go_heap_inuse_bytes", func() float64 {
		ms := s.read()
		return float64(ms.HeapInuse)
	})
	r.SetHelp("rad_go_heap_alloc_bytes", "Bytes of allocated heap objects.")
	r.GaugeFunc("rad_go_heap_alloc_bytes", func() float64 {
		ms := s.read()
		return float64(ms.HeapAlloc)
	})
	r.SetHelp("rad_go_gc_pause_p99_seconds", "99th-percentile GC pause over the last 256 cycles.")
	r.GaugeFunc("rad_go_gc_pause_p99_seconds", func() float64 {
		ms := s.read()
		return gcPauseP99(&ms)
	})
	r.SetHelp("rad_go_gc_cycles_total", "Completed GC cycles.")
	r.CounterFunc("rad_go_gc_cycles_total", func() uint64 {
		ms := s.read()
		return uint64(ms.NumGC)
	})
}
