package obs

import (
	"testing"
	"time"
)

func BenchmarkObserveMicro(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("x_seconds", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i%1000) * time.Microsecond)
	}
}

func BenchmarkObserveConst(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("x_seconds", nil)
	d := 250 * time.Millisecond
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(d)
	}
}

func BenchmarkShardIndexMicro(b *testing.B) {
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += shardIndex(7)
	}
	_ = sink
}
