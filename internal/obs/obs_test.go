package obs

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestObsCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "src", "a")
	const goroutines, per = 8, 10_000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("counter merged to %d, want %d", got, goroutines*per)
	}
	// Re-registration returns the same counter, not a fresh one.
	if again := reg.Counter("test_total", "src", "a"); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	// Label order must not matter for identity.
	c2 := reg.Counter("multi_total", "a", "1", "b", "2")
	if reg.Counter("multi_total", "b", "2", "a", "1") != c2 {
		t.Fatal("label order changed metric identity")
	}
}

func TestObsGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	reg.GaugeFunc("pulled", func() float64 { return 2.5 })
	snap := reg.Snapshot()
	var found bool
	for _, gs := range snap.Gauges {
		if gs.Name == "pulled" && gs.Value == 2.5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("pull-based gauge missing from snapshot: %+v", snap.Gauges)
	}
}

func TestObsCounterFuncReplaced(t *testing.T) {
	reg := NewRegistry()
	reg.CounterFunc("cf_total", func() uint64 { return 1 })
	reg.CounterFunc("cf_total", func() uint64 { return 9 })
	if v := reg.Snapshot().Counters[0].Value; v != 9 {
		t.Fatalf("replaced CounterFunc reads %d, want 9", v)
	}
}

// TestObsConcurrentRegisterWhileRender races child creation (the lazy
// holder/callback binding) against both render paths — the -race guarantee
// that an entry is never visible to a render before its holder is set, and
// that two racing creators of one name share a single counter.
func TestObsConcurrentRegisterWhileRender(t *testing.T) {
	reg := NewRegistry()
	const goroutines, names = 8, 32
	start := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < names; i++ {
				id := strconv.Itoa(i)
				reg.Counter("race_total", "id", id).Inc()
				reg.GaugeFunc("race_pull", func() float64 { return float64(g) }, "id", id)
				reg.Histogram("race_seconds", nil, "id", id).Observe(time.Millisecond)
			}
		}()
	}
	var renders sync.WaitGroup
	renders.Add(1)
	stop := make(chan struct{})
	go func() {
		defer renders.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b strings.Builder
			_ = reg.WritePrometheus(&b)
			_ = reg.Snapshot()
		}
	}()
	close(start)
	wg.Wait()
	close(stop)
	renders.Wait()
	// Every racing creator must have bound the same counter per id.
	for i := 0; i < names; i++ {
		if got := reg.Counter("race_total", "id", strconv.Itoa(i)).Value(); got != goroutines {
			t.Fatalf("race_total{id=%d} = %d, want %d (lost increments)", i, got, goroutines)
		}
	}
}

// TestObsUnregisterReleasesFamily: removing a family's last child must
// release its kind (and help), so churned names can come back — even as a
// different kind.
func TestObsUnregisterReleasesFamily(t *testing.T) {
	reg := NewRegistry()
	reg.SetHelp("churn", "old help")
	reg.GaugeFunc("churn", func() float64 { return 1 }, "id", "1")
	reg.GaugeFunc("churn", func() float64 { return 2 }, "id", "2")
	reg.Unregister("churn", "id", "1")
	// One sibling left: the family's kind must still be enforced.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("registering churn as a counter with a live sibling did not panic")
			}
		}()
		reg.Counter("churn", "id", "3")
	}()
	reg.Unregister("churn", "id", "2")
	// Family empty: the name is free again, as any kind.
	reg.Counter("churn").Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "# TYPE churn counter") {
		t.Fatalf("reborn family has wrong type:\n%s", b.String())
	}
	if strings.Contains(b.String(), "old help") {
		t.Fatalf("stale help survived family removal:\n%s", b.String())
	}
}

// TestObsHistogramOverflowHint: a stream sitting above the last bound must
// stay correct while reusing the overflow hint, and the hint must recover
// when the stream drops back into a finite bucket.
func TestObsHistogramOverflowHint(t *testing.T) {
	h := newHistogram([]time.Duration{time.Millisecond, time.Second})
	for i := 0; i < 10; i++ {
		h.Observe(time.Minute) // all overflow; after the first, hint == len(bounds)
	}
	if got := int(h.hint.Load()); got != len(h.bounds) {
		t.Fatalf("hint = %d, want overflow index %d", got, len(h.bounds))
	}
	h.Observe(time.Microsecond) // back to the first bucket
	counts := h.counts()
	if counts[0] != 1 || counts[len(counts)-1] != 10 {
		t.Fatalf("counts = %v, want 1 in first bucket and 10 in overflow", counts)
	}
	if got := int(h.hint.Load()); got != 0 {
		t.Fatalf("hint = %d, want 0 after dropping back", got)
	}
}

func TestObsKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge did not panic")
		}
	}()
	reg.Gauge("x_total")
}

func TestObsUnregister(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("sub_buffered", func() float64 { return 1 }, "id", "1")
	reg.GaugeFunc("sub_buffered", func() float64 { return 2 }, "id", "2")
	if !reg.Unregister("sub_buffered", "id", "1") {
		t.Fatal("unregister of existing child reported false")
	}
	if reg.Unregister("sub_buffered", "id", "1") {
		t.Fatal("second unregister reported true")
	}
	snap := reg.Snapshot()
	if len(snap.Gauges) != 1 || snap.Gauges[0].Labels["id"] != "2" {
		t.Fatalf("wrong survivors after unregister: %+v", snap.Gauges)
	}
}

// TestObsHistogramZeroObservations: an empty histogram must render cleanly
// — zero count, zero sum, all-zero buckets, quantiles 0, no NaNs.
func TestObsHistogramZeroObservations(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("empty_seconds", nil)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`empty_seconds_bucket{le="+Inf"} 0`,
		"empty_seconds_sum 0",
		"empty_seconds_count 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q:\n%s", want, text)
		}
	}
	hs := reg.Snapshot().Histograms[0]
	if hs.Count != 0 || hs.SumSeconds != 0 {
		t.Fatalf("empty histogram snapshot: %+v", hs)
	}
	if q := hs.Quantile(0.99); q != 0 {
		t.Fatalf("empty-histogram quantile = %v, want 0", q)
	}
}

// TestObsHistogramOverflowBucket: observations beyond the last bound land
// in +Inf only, and the quantile estimate saturates at the last finite
// bound instead of inventing a value.
func TestObsHistogramOverflowBucket(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("of_seconds", []time.Duration{time.Millisecond, time.Second})
	h.Observe(time.Hour)
	h.Observe(2 * time.Hour)
	h.Observe(-5 * time.Second) // negative clamps to 0: first bucket
	hs := reg.Snapshot().Histograms[0]
	if hs.Count != 3 {
		t.Fatalf("count = %d, want 3", hs.Count)
	}
	if got := hs.Buckets[0].Count; got != 1 {
		t.Fatalf("first bucket cumulative = %d, want 1 (clamped negative)", got)
	}
	if got := hs.Buckets[1].Count; got != 1 {
		t.Fatalf("1s bucket cumulative = %d, want 1", got)
	}
	last := hs.Buckets[len(hs.Buckets)-1]
	if last.LE != "+Inf" || last.UpperNanos != -1 || last.Count != 3 {
		t.Fatalf("overflow bucket = %+v", last)
	}
	if q := hs.Quantile(0.99); q != 1.0 {
		t.Fatalf("overflow quantile = %v, want saturation at 1s", q)
	}
	if want := time.Hour + 2*time.Hour; h.Sum() != want {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
}

// TestObsHistogramConcurrentObserveWhileRender hammers a histogram from
// several goroutines while concurrently rendering both expositions — the
// -race guarantee that the sharded hot path and the merging readers never
// conflict, and that no render ever sees a decreasing count.
func TestObsHistogramConcurrentObserveWhileRender(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("hot_seconds", nil, "device", "C9")
	const writers, per = 4, 5_000
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		w := w
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*1000+i) * time.Microsecond)
			}
		}()
	}
	var renders sync.WaitGroup
	renders.Add(2)
	go func() {
		defer renders.Done()
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := reg.Snapshot()
			if c := snap.Histograms[0].Count; c < last {
				t.Errorf("count went backwards: %d -> %d", last, c)
				return
			} else {
				last = c
			}
		}
	}()
	go func() {
		defer renders.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b strings.Builder
			_ = reg.WritePrometheus(&b)
		}
	}()
	wg.Wait()
	close(stop)
	renders.Wait()
	if got := h.Count(); got != writers*per {
		t.Fatalf("final count = %d, want %d", got, writers*per)
	}
}

func TestObsHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]time.Duration{10 * time.Nanosecond, 20 * time.Nanosecond})
	// A value exactly on a bound belongs to that bound's bucket (le is <=).
	for _, tc := range []struct {
		d    time.Duration
		want int
	}{{5, 0}, {10, 0}, {11, 1}, {20, 1}, {21, 2}} {
		if got := h.bucket(int64(tc.d)); got != tc.want {
			t.Fatalf("bucket(%d) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestObsQuantileInterpolation(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_seconds", []time.Duration{time.Second, 2 * time.Second, 4 * time.Second})
	for i := 0; i < 100; i++ {
		h.Observe(1500 * time.Millisecond) // all in the (1s, 2s] bucket
	}
	hs := reg.Snapshot().Histograms[0]
	if q := hs.Quantile(0.5); q < 1.0 || q > 2.0 {
		t.Fatalf("p50 = %v, want within (1s, 2s]", q)
	}
}

func TestObsPrometheusEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "path", `a"b\c`+"\n")
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{path="a\"b\\c\n"} 0`) {
		t.Fatalf("escaping wrong:\n%s", b.String())
	}
}
