package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestObsHTTPEndpoints exercises the mux the middlebox mounts on
// -obs-addr: the Prometheus exposition, the JSON snapshot, the pprof
// index, and the plain-text root.
func TestObsHTTPEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("http_reqs_total", "op", "exec").Add(3)
	reg.Histogram("http_lat_seconds", nil).Observe(5 * time.Millisecond)
	srv := httptest.NewServer(ServeMux(reg))
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics content type = %q", ctype)
	}
	for _, want := range []string{
		"# TYPE http_reqs_total counter",
		`http_reqs_total{op="exec"} 3`,
		"# TYPE http_lat_seconds histogram",
		"http_lat_seconds_count 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	snapshot, ctype := get("/snapshot")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/snapshot content type = %q", ctype)
	}
	if !strings.Contains(snapshot, `"http_reqs_total"`) || !strings.Contains(snapshot, `"sumSeconds": 0.005`) {
		t.Fatalf("/snapshot payload wrong:\n%s", snapshot)
	}

	if idx, _ := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Fatal("/debug/pprof/ index missing profiles")
	}
	if root, _ := get("/"); !strings.Contains(root, "/metrics") {
		t.Fatalf("root index missing endpoint listing:\n%s", root)
	}

	resp, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status = %d, want 404", resp.StatusCode)
	}
}
