// Package span is the repository's request-tracing layer: a dependency-free,
// always-on span flight recorder. Every layer of one request's journey —
// wire decode, policy attempts, device exec, store append, DLQ spill, stream
// delivery — records a Span carrying a 64-bit trace id and its parent's span
// id, and the recorder assembles the spans it still holds into trees on
// demand (/debug/spans, radwatch -spans).
//
// It is a flight recorder, not an exporter: spans land in per-CPU-style
// sharded ring buffers of bounded memory, the newest spans overwrite the
// oldest, and every loss is counted exactly (Stats.Evicted, Stats.Sampled).
// Nothing leaves the process unless something asks.
//
// Design rules, inherited from the obs metrics kit it lives beside:
//
//   - The traced hot paths are sacred. Record is one sampler check, one
//     shard pick, and one short critical section copying the span by value
//     into a preallocated ring — no allocation, no channel, no I/O. A nil
//     *Recorder is valid everywhere and makes every method a no-op, so
//     uninstrumented paths pay a single nil check.
//   - Deterministic under simclock. Span ids come from a seeded splitmix64
//     counter stream and the sampling decision is a pure function of the
//     trace id and the seed, so a virtual-clock campaign samples the same
//     traces run after run. Timestamps are supplied by the caller from its
//     own injected clock; the recorder never reads one.
//   - No dependencies. Stdlib only, and nothing from the rest of the
//     repository, so every internal package may record spans without import
//     cycles.
package span

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// Context is the trace-propagation pair a request carries across process
// boundaries: which trace it belongs to and which span is its parent. The
// zero value means "untraced" and is what every pre-tracing peer sends.
type Context struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context carries a trace.
func (c Context) Valid() bool { return c.TraceID != 0 }

// Span outcomes. Free-form strings are allowed; these are the vocabulary
// the repository's own layers use (and /debug/spans filters on).
const (
	OutcomeOK      = "ok"
	OutcomeError   = "error"
	OutcomeTimeout = "timeout"
	OutcomeShed    = "shed"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// maxAttrs bounds a span's annotations. The array lives inline in the Span
// so recording never allocates; four is enough for the repository's spans
// (device, command, attempt, breaker state).
const maxAttrs = 4

// Span is one timed operation in a trace tree. SpanID must be unique within
// the trace; ParentID is zero for a root. Start and End come from the
// caller's clock (virtual or real — the recorder does not care).
type Span struct {
	TraceID  uint64
	SpanID   uint64
	ParentID uint64

	Name    string // operation, e.g. "middlebox.exec"
	Tenant  string // owning lab; "" outside fleet deployments
	Outcome string // OutcomeOK etc.; "" reads as ok

	Start time.Time
	End   time.Time

	nattrs uint8
	attrs  [maxAttrs]Attr
}

// SetAttr annotates the span. Attributes past the inline capacity are
// silently dropped — annotations are a debugging aid, never load-bearing.
func (s *Span) SetAttr(key, value string) {
	if int(s.nattrs) < maxAttrs {
		s.attrs[s.nattrs] = Attr{Key: key, Value: value}
		s.nattrs++
	}
}

// Attrs returns the span's annotations (aliasing the span's storage).
func (s *Span) Attrs() []Attr { return s.attrs[:s.nattrs] }

// Duration is the span's elapsed time on its recording clock.
func (s *Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Failed reports whether the span's outcome is anything but success.
func (s *Span) Failed() bool { return s.Outcome != "" && s.Outcome != OutcomeOK }

// Config parameterizes a Recorder. The zero value is usable: every trace
// sampled, default ring sizing, no slow-span hook.
type Config struct {
	// BufferPerShard is the span capacity of each shard's ring (rounded up
	// to a power of two; default 512). Total bounded memory is
	// shards × BufferPerShard spans.
	BufferPerShard int
	// Shards overrides the shard count (rounded up to a power of two;
	// default: GOMAXPROCS rounded up, capped at 64 — the obs layout).
	Shards int
	// Seed seeds the span-id stream and the sampling decision; 0 selects 1.
	// Two recorders with the same seed assign the same id sequence, which is
	// what keeps virtual-clock campaigns reproducible span-for-span.
	Seed uint64
	// SampleEvery keeps one trace in N (0 and 1 both mean every trace). The
	// decision is per trace id, so a trace is kept or dropped whole.
	SampleEvery uint64
	// SlowThreshold, when positive, invokes OnSlow for every recorded span
	// at or above the threshold — the slow-span log.
	SlowThreshold time.Duration
	// OnSlow receives slow spans. Called synchronously from Record; keep it
	// cheap (a log line).
	OnSlow func(Span)
}

// shard is one ring of recorded spans. A plain mutex, not atomics: the
// critical section is a value copy into a preallocated slot, shards keep
// concurrent writers apart, and rings must be read whole for tree assembly
// anyway.
type shard struct {
	mu      sync.Mutex
	ring    []Span
	next    uint64 // total spans ever written to this shard
	evicted uint64 // spans overwritten before ever being read
	_       [24]byte
}

// Recorder is the span flight recorder. Safe for concurrent use; a nil
// *Recorder is a valid no-op recorder.
type Recorder struct {
	cfg    Config
	shards []shard
	mask   uint32
	ids    atomic.Uint64 // span-id counter feeding the seeded stream
	sample atomic.Uint64 // spans discarded by the sampler
}

// NewRecorder builds a recorder.
func NewRecorder(cfg Config) *Recorder {
	if cfg.BufferPerShard <= 0 {
		cfg.BufferPerShard = 512
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
		if cfg.Shards > 64 {
			cfg.Shards = 64
		}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	nshard := ceilPow2(cfg.Shards)
	ring := ceilPow2(cfg.BufferPerShard)
	r := &Recorder{cfg: cfg, shards: make([]shard, nshard), mask: uint32(nshard - 1)}
	for i := range r.shards {
		r.shards[i].ring = make([]Span, ring)
	}
	return r
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// shardIndex picks a shard for the calling goroutine — the obs kit's
// stack-address Fibonacci hash: goroutines spread across shards, and the
// choice only steers contention, never correctness.
func shardIndex(mask uint32) uint32 {
	var probe byte
	h := uint64(uintptr(unsafe.Pointer(&probe)))
	h *= 0x9e3779b97f4a7c15
	return uint32(h>>33) & mask
}

// splitmix64 is the id stream's output function: a bijective mixer, so a
// sequential seeded counter yields well-distributed, collision-free ids.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 { // 0 means "no id" on the wire; remap the single zero output
		x = 1
	}
	return x
}

// Enabled reports whether spans are being recorded (false on a nil
// recorder) — the one-branch guard hot paths use before building a span.
func (r *Recorder) Enabled() bool { return r != nil }

// NewID draws the next span/trace id from the seeded stream. Returns 0 on
// a nil recorder.
func (r *Recorder) NewID() uint64 {
	if r == nil {
		return 0
	}
	return splitmix64(r.cfg.Seed ^ r.ids.Add(1))
}

// NewContext starts a fresh trace: a new trace id with a new root span id.
// One counter bump claims both ids (the stream is identical to two NewID
// calls; a locked add is the single most expensive instruction on the
// traced fast path, so fresh traces pay it once).
func (r *Recorder) NewContext() Context {
	if r == nil {
		return Context{}
	}
	n := r.ids.Add(2)
	return Context{TraceID: splitmix64(r.cfg.Seed ^ (n - 1)), SpanID: splitmix64(r.cfg.Seed ^ n)}
}

// Child derives the context for a child span of parent.
func (r *Recorder) Child(parent Context) Context {
	if r == nil {
		return Context{}
	}
	return Context{TraceID: parent.TraceID, SpanID: r.NewID()}
}

// Adopt continues a trace received from a peer: the remote context's span
// becomes the parent. On an invalid (untraced) remote context it starts a
// fresh trace instead, so callers never branch.
func (r *Recorder) Adopt(remote Context) (ctx Context, parent uint64) {
	if r == nil {
		return Context{}, 0
	}
	if remote.Valid() {
		return Context{TraceID: remote.TraceID, SpanID: r.NewID()}, remote.SpanID
	}
	return r.NewContext(), 0
}

// Sampled reports the (deterministic) sampling decision for a trace id.
func (r *Recorder) Sampled(traceID uint64) bool {
	if r == nil {
		return false
	}
	n := r.cfg.SampleEvery
	if n <= 1 {
		return true
	}
	return splitmix64(traceID^r.cfg.Seed)%n == 0
}

// Record stores one completed span. Spans of unsampled traces are counted
// and discarded; a full ring overwrites its oldest span (counted in
// Stats.Evicted). Never blocks beyond the shard's short critical section.
func (r *Recorder) Record(s Span) {
	if r == nil {
		return
	}
	if !r.Sampled(s.TraceID) {
		r.sample.Add(1)
		return
	}
	sh := &r.shards[shardIndex(r.mask)]
	sh.mu.Lock()
	n := uint64(len(sh.ring))
	if sh.next >= n {
		sh.evicted++
	}
	sh.ring[sh.next&(n-1)] = s
	sh.next++
	sh.mu.Unlock()
	if th := r.cfg.SlowThreshold; th > 0 && s.End.Sub(s.Start) >= th && r.cfg.OnSlow != nil {
		r.cfg.OnSlow(s)
	}
}

// Stats is the recorder's exact loss accounting.
type Stats struct {
	// Recorded counts spans accepted into the rings (including ones since
	// evicted).
	Recorded uint64 `json:"recorded"`
	// Evicted counts spans overwritten by newer ones (drop-oldest losses).
	Evicted uint64 `json:"evicted"`
	// Sampled counts spans discarded by the sampling decision.
	Sampled uint64 `json:"sampled"`
	// Buffered is the number of spans currently held.
	Buffered int `json:"buffered"`
}

// Stats snapshots the loss accounting.
func (r *Recorder) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	st := Stats{Sampled: r.sample.Load()}
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		st.Recorded += sh.next
		st.Evicted += sh.evicted
		held := sh.next
		if held > uint64(len(sh.ring)) {
			held = uint64(len(sh.ring))
		}
		st.Buffered += int(held)
		sh.mu.Unlock()
	}
	return st
}

// Spans copies out every span currently buffered, oldest first per shard.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	var out []Span
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		n := uint64(len(sh.ring))
		held := sh.next
		if held > n {
			held = n
		}
		for j := sh.next - held; j < sh.next; j++ {
			out = append(out, sh.ring[j&(n-1)])
		}
		sh.mu.Unlock()
	}
	return out
}

// Tree is one trace tree node: a span and the children recorded under it.
type Tree struct {
	Span     Span
	Children []*Tree
}

// Filter selects root spans for Roots. The zero value matches everything.
type Filter struct {
	// MinDuration keeps only roots at least this long.
	MinDuration time.Duration
	// Tenant keeps only roots tagged with this tenant id.
	Tenant string
	// Outcome keeps only roots with this outcome ("ok" also matches the
	// empty outcome).
	Outcome string
	// Limit caps the number of roots returned (most recent first);
	// 0 means no cap.
	Limit int
}

func (f Filter) match(s *Span) bool {
	if f.MinDuration > 0 && s.Duration() < f.MinDuration {
		return false
	}
	if f.Tenant != "" && s.Tenant != f.Tenant {
		return false
	}
	if f.Outcome != "" {
		o := s.Outcome
		if o == "" {
			o = OutcomeOK
		}
		if o != f.Outcome {
			return false
		}
	}
	return true
}

// Roots assembles the buffered spans into trees and returns the roots
// matching f, most recent first. A span is a root when it has no parent or
// its parent span is no longer buffered (partial trees survive eviction —
// and a server-side tree whose true root lives in the client's recorder
// still renders).
func (r *Recorder) Roots(f Filter) []*Tree {
	return Assemble(r.Spans(), f)
}

// Assemble builds trace trees from a flat span list (Roots over a recorder
// snapshot; also used on spans pulled from a remote /debug/spans). Children
// are ordered by start time; roots matching f are returned most recent
// first.
func Assemble(spans []Span, f Filter) []*Tree {
	if len(spans) == 0 {
		return nil
	}
	// Parent lookup is scoped by trace id, never span id alone: span ids
	// are only unique within one recorder's stream, and a tree often mixes
	// processes — a server root's ParentID is a span id drawn from the
	// *client's* seeded stream, which can collide numerically with a local
	// span of some other trace. Matching within the trace keeps every tree
	// self-contained; a same-trace collision (two spans, one id) last-wins.
	type key struct{ trace, span uint64 }
	nodes := make(map[key]*Tree, len(spans))
	for i := range spans {
		s := spans[i]
		nodes[key{s.TraceID, s.SpanID}] = &Tree{Span: s}
	}
	var roots []*Tree
	for _, n := range nodes {
		if p, ok := nodes[key{n.Span.TraceID, n.Span.ParentID}]; ok && n.Span.ParentID != 0 && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	for _, n := range nodes {
		sort.Slice(n.Children, func(i, j int) bool {
			a, b := n.Children[i].Span, n.Children[j].Span
			if !a.Start.Equal(b.Start) {
				return a.Start.Before(b.Start)
			}
			return a.SpanID < b.SpanID
		})
	}
	filtered := roots[:0]
	for _, n := range roots {
		if f.match(&n.Span) {
			filtered = append(filtered, n)
		}
	}
	sort.Slice(filtered, func(i, j int) bool {
		a, b := filtered[i].Span, filtered[j].Span
		if !a.Start.Equal(b.Start) {
			return a.Start.After(b.Start)
		}
		return a.SpanID > b.SpanID
	})
	if f.Limit > 0 && len(filtered) > f.Limit {
		filtered = filtered[:f.Limit]
	}
	return filtered
}

// TenantRollup aggregates one tenant's buffered spans — the per-tenant
// trace summary a fleet router exposes.
type TenantRollup struct {
	Tenant string        `json:"tenant"`
	Spans  uint64        `json:"spans"`
	Errors uint64        `json:"errors"` // spans with a non-ok outcome
	Max    time.Duration `json:"maxNanos"`
	Total  time.Duration `json:"totalNanos"`
}

// Rollup aggregates the buffered spans by tenant (untagged spans roll up
// under the empty tenant), sorted by tenant id.
func (r *Recorder) Rollup() []TenantRollup {
	if r == nil {
		return nil
	}
	acc := make(map[string]*TenantRollup)
	for _, s := range r.Spans() {
		t := acc[s.Tenant]
		if t == nil {
			t = &TenantRollup{Tenant: s.Tenant}
			acc[s.Tenant] = t
		}
		t.Spans++
		if s.Failed() {
			t.Errors++
		}
		d := s.Duration()
		if d > t.Max {
			t.Max = d
		}
		t.Total += d
	}
	out := make([]TenantRollup, 0, len(acc))
	for _, t := range acc {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// TenantStats returns one tenant's rollup (zero when the tenant has no
// buffered spans) without materializing the full rollup slice.
func (r *Recorder) TenantStats(tenant string) TenantRollup {
	if r == nil {
		return TenantRollup{Tenant: tenant}
	}
	t := TenantRollup{Tenant: tenant}
	for _, s := range r.Spans() {
		if s.Tenant != tenant {
			continue
		}
		t.Spans++
		if s.Failed() {
			t.Errors++
		}
		d := s.Duration()
		if d > t.Max {
			t.Max = d
		}
		t.Total += d
	}
	return t
}
