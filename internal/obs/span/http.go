package span

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// SpanJSON is the wire shape of one span on /debug/spans. Ids are rendered
// as 16-digit hex strings — JSON numbers lose precision past 2^53.
type SpanJSON struct {
	TraceID  string        `json:"traceId"`
	SpanID   string        `json:"spanId"`
	ParentID string        `json:"parentId,omitempty"`
	Name     string        `json:"name"`
	Tenant   string        `json:"tenant,omitempty"`
	Outcome  string        `json:"outcome"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"durationNanos"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// TreeJSON is one trace tree on /debug/spans.
type TreeJSON struct {
	Span     SpanJSON   `json:"span"`
	Children []TreeJSON `json:"children,omitempty"`
}

// PageJSON is the full /debug/spans JSON document.
type PageJSON struct {
	Roots   []TreeJSON     `json:"roots"`
	Stats   Stats          `json:"stats"`
	Rollups []TenantRollup `json:"rollups,omitempty"`
}

// FormatID renders a span/trace id the way the JSON surface does.
func FormatID(id uint64) string { return fmt.Sprintf("%016x", id) }

// ParseID parses an id rendered by FormatID.
func ParseID(s string) (uint64, error) { return strconv.ParseUint(s, 16, 64) }

func toJSON(s *Span) SpanJSON {
	j := SpanJSON{
		TraceID:  FormatID(s.TraceID),
		SpanID:   FormatID(s.SpanID),
		Name:     s.Name,
		Tenant:   s.Tenant,
		Outcome:  s.Outcome,
		Start:    s.Start,
		Duration: s.Duration(),
	}
	if s.ParentID != 0 {
		j.ParentID = FormatID(s.ParentID)
	}
	if j.Outcome == "" {
		j.Outcome = OutcomeOK
	}
	if n := len(s.Attrs()); n > 0 {
		j.Attrs = append([]Attr(nil), s.Attrs()...)
	}
	return j
}

// TreesJSON converts assembled trees into their wire shape.
func TreesJSON(trees []*Tree) []TreeJSON {
	out := make([]TreeJSON, 0, len(trees))
	for _, t := range trees {
		out = append(out, TreeJSON{Span: toJSON(&t.Span), Children: TreesJSON(t.Children)})
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// WriteTrees renders trace trees as indented human text — the /debug/spans
// text view, and what radwatch -spans prints after pulling the JSON.
func WriteTrees(w io.Writer, trees []TreeJSON) {
	for _, t := range trees {
		writeTree(w, t, 0)
	}
}

func writeTree(w io.Writer, t TreeJSON, depth int) {
	indent := strings.Repeat("  ", depth)
	if depth == 0 {
		fmt.Fprintf(w, "%strace %s\n", indent, t.Span.TraceID)
	}
	line := fmt.Sprintf("%s  %-24s %10s  %s", indent, t.Span.Name, t.Span.Duration.Round(time.Microsecond), t.Span.Outcome)
	if t.Span.Tenant != "" {
		line += "  tenant=" + t.Span.Tenant
	}
	for _, a := range t.Span.Attrs {
		line += "  " + a.Key + "=" + a.Value
	}
	fmt.Fprintln(w, line)
	for _, c := range t.Children {
		writeTree(w, c, depth+1)
	}
}

// Handler serves the recorder on /debug/spans.
//
// Query parameters:
//
//	min=DUR      only roots at least DUR long (Go duration, e.g. 50ms)
//	tenant=ID    only roots tagged with tenant ID
//	outcome=S    only roots with outcome S (ok|error|timeout|shed|...)
//	limit=N      at most N roots, most recent first (default 50)
//	format=text  human text instead of JSON
func Handler(r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		f := Filter{Limit: 50}
		if v := q.Get("min"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				http.Error(w, "bad min: "+err.Error(), http.StatusBadRequest)
				return
			}
			f.MinDuration = d
		}
		f.Tenant = q.Get("tenant")
		f.Outcome = q.Get("outcome")
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			f.Limit = n
		}
		page := PageJSON{
			Roots:   TreesJSON(r.Roots(f)),
			Stats:   r.Stats(),
			Rollups: r.Rollup(),
		}
		sort.Slice(page.Rollups, func(i, j int) bool { return page.Rollups[i].Tenant < page.Rollups[j].Tenant })
		if q.Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			st := page.Stats
			fmt.Fprintf(w, "spans: %d buffered, %d recorded, %d evicted, %d sampled out\n",
				st.Buffered, st.Recorded, st.Evicted, st.Sampled)
			WriteTrees(w, page.Roots)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(page)
	})
}
