package span

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func at(ms int) time.Time { return time.Unix(0, int64(ms)*int64(time.Millisecond)) }

func TestSpanNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if id := r.NewID(); id != 0 {
		t.Fatalf("nil NewID = %d", id)
	}
	if ctx := r.NewContext(); ctx.Valid() {
		t.Fatalf("nil NewContext = %+v", ctx)
	}
	if ctx, parent := r.Adopt(Context{TraceID: 7, SpanID: 9}); ctx.Valid() || parent != 0 {
		t.Fatalf("nil Adopt = %+v parent %d", ctx, parent)
	}
	r.Record(Span{TraceID: 1, SpanID: 2})
	if st := r.Stats(); st != (Stats{}) {
		t.Fatalf("nil Stats = %+v", st)
	}
	if got := r.Spans(); got != nil {
		t.Fatalf("nil Spans = %v", got)
	}
	if got := r.Roots(Filter{}); got != nil {
		t.Fatalf("nil Roots = %v", got)
	}
	if got := r.Rollup(); got != nil {
		t.Fatalf("nil Rollup = %v", got)
	}
}

func TestSpanRingEvictionAccounting(t *testing.T) {
	r := NewRecorder(Config{BufferPerShard: 4, Shards: 1})
	for i := 0; i < 10; i++ {
		r.Record(Span{TraceID: uint64(i + 1), SpanID: uint64(i + 1), Name: "s", Start: at(i), End: at(i + 1)})
	}
	st := r.Stats()
	if st.Recorded != 10 {
		t.Fatalf("Recorded = %d, want 10", st.Recorded)
	}
	if st.Evicted != 6 {
		t.Fatalf("Evicted = %d, want 6", st.Evicted)
	}
	if st.Buffered != 4 {
		t.Fatalf("Buffered = %d, want 4", st.Buffered)
	}
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("len(Spans) = %d, want 4", len(spans))
	}
	// Drop-oldest: the survivors are the last four recorded, oldest first.
	for i, s := range spans {
		if want := uint64(7 + i); s.TraceID != want {
			t.Fatalf("span %d trace = %d, want %d", i, s.TraceID, want)
		}
	}
}

func TestSpanSamplerDeterministicAndExact(t *testing.T) {
	a := NewRecorder(Config{SampleEvery: 4, Seed: 99, Shards: 1, BufferPerShard: 1024})
	b := NewRecorder(Config{SampleEvery: 4, Seed: 99, Shards: 1, BufferPerShard: 1024})
	kept := 0
	for i := uint64(1); i <= 400; i++ {
		if a.Sampled(i) != b.Sampled(i) {
			t.Fatalf("sampling decision for trace %d differs between identical recorders", i)
		}
		if a.Sampled(i) {
			kept++
		}
		a.Record(Span{TraceID: i, SpanID: i})
	}
	if kept == 0 || kept == 400 {
		t.Fatalf("sampler kept %d/400 traces; want a strict subset", kept)
	}
	st := a.Stats()
	if int(st.Recorded) != kept {
		t.Fatalf("Recorded = %d, want %d kept", st.Recorded, kept)
	}
	if int(st.Sampled) != 400-kept {
		t.Fatalf("Sampled = %d, want %d", st.Sampled, 400-kept)
	}
	// A different seed must make different decisions somewhere.
	c := NewRecorder(Config{SampleEvery: 4, Seed: 7})
	differs := false
	for i := uint64(1); i <= 400 && !differs; i++ {
		differs = a.Sampled(i) != c.Sampled(i)
	}
	if !differs {
		t.Fatal("seed does not influence sampling")
	}
}

func TestSpanSeededIDStreamReproducible(t *testing.T) {
	a := NewRecorder(Config{Seed: 42})
	b := NewRecorder(Config{Seed: 42})
	for i := 0; i < 64; i++ {
		x, y := a.NewID(), b.NewID()
		if x != y {
			t.Fatalf("id %d: %x vs %x", i, x, y)
		}
		if x == 0 {
			t.Fatal("NewID returned 0")
		}
	}
}

func TestSpanTreeAssemblyAndFilters(t *testing.T) {
	r := NewRecorder(Config{Shards: 1, BufferPerShard: 64})
	root := r.NewContext()
	child := r.Child(root)
	grand := r.Child(child)
	r.Record(Span{TraceID: root.TraceID, SpanID: root.SpanID, Name: "req", Tenant: "alpha",
		Outcome: OutcomeOK, Start: at(0), End: at(100)})
	r.Record(Span{TraceID: child.TraceID, SpanID: child.SpanID, ParentID: root.SpanID,
		Name: "exec", Tenant: "alpha", Outcome: OutcomeError, Start: at(10), End: at(90)})
	r.Record(Span{TraceID: grand.TraceID, SpanID: grand.SpanID, ParentID: child.SpanID,
		Name: "attempt", Tenant: "alpha", Start: at(20), End: at(30)})
	other := r.NewContext()
	r.Record(Span{TraceID: other.TraceID, SpanID: other.SpanID, Name: "fast", Tenant: "beta",
		Outcome: OutcomeShed, Start: at(200), End: at(201)})

	roots := r.Roots(Filter{})
	if len(roots) != 2 {
		t.Fatalf("roots = %d, want 2", len(roots))
	}
	// Most recent first.
	if roots[0].Span.Name != "fast" || roots[1].Span.Name != "req" {
		t.Fatalf("root order = %q, %q", roots[0].Span.Name, roots[1].Span.Name)
	}
	tree := roots[1]
	if len(tree.Children) != 1 || tree.Children[0].Span.Name != "exec" {
		t.Fatalf("req children = %+v", tree.Children)
	}
	if len(tree.Children[0].Children) != 1 || tree.Children[0].Children[0].Span.Name != "attempt" {
		t.Fatal("grandchild not linked under exec")
	}

	if got := r.Roots(Filter{MinDuration: 50 * time.Millisecond}); len(got) != 1 || got[0].Span.Name != "req" {
		t.Fatalf("min-duration filter = %+v", got)
	}
	if got := r.Roots(Filter{Tenant: "beta"}); len(got) != 1 || got[0].Span.Name != "fast" {
		t.Fatalf("tenant filter = %+v", got)
	}
	if got := r.Roots(Filter{Outcome: OutcomeShed}); len(got) != 1 || got[0].Span.Name != "fast" {
		t.Fatalf("outcome filter = %+v", got)
	}
	if got := r.Roots(Filter{Limit: 1}); len(got) != 1 || got[0].Span.Name != "fast" {
		t.Fatalf("limit filter = %+v", got)
	}
}

func TestSpanOrphanBecomesRoot(t *testing.T) {
	// A child whose parent span was evicted (or lives in another process's
	// recorder) must still render, as its own root.
	r := NewRecorder(Config{Shards: 1, BufferPerShard: 8})
	r.Record(Span{TraceID: 5, SpanID: 10, ParentID: 999, Name: "orphan", Start: at(0), End: at(1)})
	roots := r.Roots(Filter{})
	if len(roots) != 1 || roots[0].Span.Name != "orphan" {
		t.Fatalf("roots = %+v", roots)
	}
}

func TestSpanAssembleScopesParentByTrace(t *testing.T) {
	// A cross-process root's ParentID is a span id from the *client's* id
	// stream, which can collide numerically with a local span of some
	// other trace (both streams are seed^counter over small counters).
	// Parent matching must be scoped by trace id, or trace 2's server tree
	// would nest under trace 1's unrelated span.
	r := NewRecorder(Config{Shards: 1, BufferPerShard: 8})
	r.Record(Span{TraceID: 1, SpanID: 77, Name: "middlebox.exec", Start: at(0), End: at(1)})
	r.Record(Span{TraceID: 2, SpanID: 50, ParentID: 77, Name: "server.request", Start: at(2), End: at(3)})
	r.Record(Span{TraceID: 2, SpanID: 51, ParentID: 50, Name: "middlebox.exec", Start: at(2), End: at(3)})
	roots := r.Roots(Filter{})
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want 2 (one per trace): %+v", len(roots), roots)
	}
	for _, root := range roots {
		switch root.Span.TraceID {
		case 1:
			if len(root.Children) != 0 {
				t.Fatalf("trace 1 stole trace 2's spans: %+v", root.Children)
			}
		case 2:
			if root.Span.Name != "server.request" || len(root.Children) != 1 {
				t.Fatalf("trace 2 tree mis-assembled: %+v", root)
			}
		}
	}
}

func TestSpanAttrsBounded(t *testing.T) {
	var s Span
	for i := 0; i < maxAttrs+3; i++ {
		s.SetAttr("k", "v")
	}
	if got := len(s.Attrs()); got != maxAttrs {
		t.Fatalf("attrs = %d, want %d", got, maxAttrs)
	}
}

func TestSpanTenantRollups(t *testing.T) {
	r := NewRecorder(Config{Shards: 1, BufferPerShard: 64})
	r.Record(Span{TraceID: 1, SpanID: 1, Tenant: "alpha", Outcome: OutcomeOK, Start: at(0), End: at(10)})
	r.Record(Span{TraceID: 2, SpanID: 2, Tenant: "alpha", Outcome: OutcomeError, Start: at(0), End: at(30)})
	r.Record(Span{TraceID: 3, SpanID: 3, Tenant: "beta", Outcome: OutcomeTimeout, Start: at(0), End: at(5)})
	got := r.Rollup()
	if len(got) != 2 {
		t.Fatalf("rollups = %+v", got)
	}
	alpha, beta := got[0], got[1]
	if alpha.Tenant != "alpha" || alpha.Spans != 2 || alpha.Errors != 1 ||
		alpha.Max != 30*time.Millisecond || alpha.Total != 40*time.Millisecond {
		t.Fatalf("alpha rollup = %+v", alpha)
	}
	if beta.Tenant != "beta" || beta.Spans != 1 || beta.Errors != 1 {
		t.Fatalf("beta rollup = %+v", beta)
	}
	if ts := r.TenantStats("alpha"); ts != alpha {
		t.Fatalf("TenantStats alpha = %+v, want %+v", ts, alpha)
	}
	if ts := r.TenantStats("missing"); ts.Spans != 0 {
		t.Fatalf("TenantStats missing = %+v", ts)
	}
}

func TestSpanSlowHook(t *testing.T) {
	var slow []Span
	r := NewRecorder(Config{Shards: 1, SlowThreshold: 10 * time.Millisecond,
		OnSlow: func(s Span) { slow = append(slow, s) }})
	r.Record(Span{TraceID: 1, SpanID: 1, Name: "quick", Start: at(0), End: at(1)})
	r.Record(Span{TraceID: 2, SpanID: 2, Name: "slow", Start: at(0), End: at(50)})
	if len(slow) != 1 || slow[0].Name != "slow" {
		t.Fatalf("slow hook fired for %+v", slow)
	}
}

func TestSpanHandlerJSONAndText(t *testing.T) {
	r := NewRecorder(Config{Shards: 1, BufferPerShard: 64})
	root := r.NewContext()
	s := Span{TraceID: root.TraceID, SpanID: root.SpanID, Name: "middlebox.exec",
		Tenant: "alpha", Outcome: OutcomeOK, Start: at(0), End: at(25)}
	s.SetAttr("device", "C9")
	r.Record(s)
	child := r.Child(root)
	r.Record(Span{TraceID: child.TraceID, SpanID: child.SpanID, ParentID: root.SpanID,
		Name: "exec.attempt", Tenant: "alpha", Start: at(1), End: at(20)})

	h := Handler(r)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/spans", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var page PageJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if len(page.Roots) != 1 || page.Roots[0].Span.Name != "middlebox.exec" {
		t.Fatalf("page roots = %+v", page.Roots)
	}
	if len(page.Roots[0].Children) != 1 {
		t.Fatalf("children = %+v", page.Roots[0].Children)
	}
	if page.Roots[0].Span.TraceID != FormatID(root.TraceID) {
		t.Fatalf("trace id = %q", page.Roots[0].Span.TraceID)
	}
	id, err := ParseID(page.Roots[0].Span.TraceID)
	if err != nil || id != root.TraceID {
		t.Fatalf("ParseID round-trip: %v %x", err, id)
	}
	if page.Stats.Recorded != 2 {
		t.Fatalf("stats = %+v", page.Stats)
	}
	if len(page.Rollups) != 1 || page.Rollups[0].Tenant != "alpha" {
		t.Fatalf("rollups = %+v", page.Rollups)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/spans?format=text", nil))
	body := rec.Body.String()
	for _, want := range []string{"trace " + FormatID(root.TraceID), "middlebox.exec", "exec.attempt", "device=C9", "2 recorded"} {
		if !strings.Contains(body, want) {
			t.Fatalf("text view missing %q:\n%s", want, body)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/spans?tenant=nobody", nil))
	json.Unmarshal(rec.Body.Bytes(), &page)
	if len(page.Roots) != 0 {
		t.Fatalf("tenant filter leaked roots: %+v", page.Roots)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/spans?min=bogus", nil))
	if rec.Code != 400 {
		t.Fatalf("bad min status = %d", rec.Code)
	}
}

func TestSpanRecorderConcurrent(t *testing.T) {
	r := NewRecorder(Config{BufferPerShard: 32, SampleEvery: 2, SlowThreshold: time.Nanosecond,
		OnSlow: func(Span) {}})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				ctx := r.NewContext()
				r.Record(Span{TraceID: ctx.TraceID, SpanID: ctx.SpanID,
					Name: "n", Tenant: "t", Start: at(i), End: at(i + 1)})
				if i%100 == 0 {
					r.Roots(Filter{Limit: 5})
					r.Stats()
					r.Rollup()
				}
			}
		}(g)
	}
	wg.Wait()
	st := r.Stats()
	if st.Recorded+st.Sampled != 4000 {
		t.Fatalf("accounting mismatch: %+v", st)
	}
}
