package span

import (
	"testing"
	"time"
)

// BenchmarkRecord prices the recorder's hot path in isolation: Adopt is
// the per-request trace-context cost (one counter bump plus two splitmix
// rounds), Record is the per-span cost (sampler check, shard pick, one
// ring copy under the shard mutex), and Exec composes the two the way a
// traced middlebox exec does. These are the numbers the ≤5% tracing
// budget in BenchmarkExecObserved decomposes into.
func BenchmarkRecord(b *testing.B) {
	start := time.Unix(0, 0)
	end := start.Add(time.Millisecond)

	b.Run("Adopt", func(b *testing.B) {
		r := NewRecorder(Config{Seed: 1})
		for i := 0; i < b.N; i++ {
			ctx, _ := r.Adopt(Context{})
			if !ctx.Valid() {
				b.Fatal("invalid context")
			}
		}
	})
	b.Run("Record", func(b *testing.B) {
		r := NewRecorder(Config{Seed: 1})
		s := Span{TraceID: 7, SpanID: 8, Name: "middlebox.exec", Start: start, End: end}
		s.SetAttr("device", "C9")
		s.SetAttr("command", "MVNG")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Record(s)
		}
	})
	b.Run("Exec", func(b *testing.B) {
		r := NewRecorder(Config{Seed: 1})
		for i := 0; i < b.N; i++ {
			ctx, parent := r.Adopt(Context{})
			s := Span{TraceID: ctx.TraceID, SpanID: ctx.SpanID, ParentID: parent,
				Name: "middlebox.exec", Start: start, End: end}
			s.SetAttr("device", "C9")
			s.SetAttr("command", "MVNG")
			r.Record(s)
		}
	})
	b.Run("Unsampled", func(b *testing.B) {
		r := NewRecorder(Config{Seed: 1, SampleEvery: 1 << 62})
		s := Span{TraceID: 7, SpanID: 8, Name: "middlebox.exec", Start: start, End: end}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Record(s)
		}
	})
}
