// Package obs is the repository's self-observability layer: a
// dependency-free metrics kit — counters, gauges, and fixed-bucket latency
// histograms — plus a registry that renders both the Prometheus text
// exposition format and a structured JSON snapshot.
//
// The package exists because RATracer's whole value proposition is
// visibility into an opaque automation stack, and a tracing middlebox whose
// own latency distributions, breaker flips, and broker drops are invisible
// is not holding itself to the standard it applies to the devices it
// traces. Every layer of the reproduction (middlebox exec, tracedb, the
// stream broker, the parallel pool, the fault injectors) registers its
// metrics here; radmiddlebox -obs-addr serves them live and radwatch -obs
// pretty-prints them.
//
// Design rules:
//
//   - The observed hot paths are sacred. Counter.Add and Histogram.Observe
//     are lock-free: per-P-style sharded cache-line-padded atomics, merged
//     only at render time — the same shard-then-merge discipline
//     internal/parallel applies to the analysis kernels. The middlebox exec
//     path's overhead budget (≤5% over the PR 4 hardened baseline,
//     BenchmarkExecObserved) is the constraint the layout serves.
//   - Reads never see a metric go backwards, but a render racing concurrent
//     observes may split one observation across two renders (each atomic is
//     individually exact; cross-atomic consistency is not promised —
//     standard monitoring semantics).
//   - No time source. Histograms observe time.Duration values the caller
//     measured with its own injected clock, so virtual-clock campaigns
//     produce bit-identical histograms run after run while real-clock
//     deployments measure wall time. The package itself never reads a
//     clock.
//   - No dependencies. Stdlib only, and nothing from the rest of the
//     repository, so every internal package may register metrics without
//     import cycles.
package obs

import (
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"
)

// shardCount is the number of per-metric shards: the next power of two at
// or above GOMAXPROCS at package init, capped at 64. One shard per P is the
// target; the cap bounds the per-metric footprint on very wide machines.
var shardCount = func() int {
	n := runtime.GOMAXPROCS(0)
	s := 1
	for s < n && s < 64 {
		s <<= 1
	}
	return s
}()

// shardIndex picks a shard for the calling goroutine. Go does not expose
// the current P, so the index is a multiplicative hash of a stack address:
// every goroutine has its own stack, so concurrent writers spread across
// shards, which is all the layout needs — any goroutine may use any shard,
// because reads merge all of them. The choice only steers contention, never
// correctness.
func shardIndex(mask uint32) uint32 {
	var probe byte
	h := uint64(uintptr(unsafe.Pointer(&probe)))
	h *= 0x9e3779b97f4a7c15 // Fibonacci hashing: spread nearby addresses
	return uint32(h>>33) & mask
}

// pad fills a counter shard out to a cache line so neighbouring shards
// never false-share.
const cacheLine = 64

type counterShard struct {
	v atomic.Uint64
	_ [cacheLine - 8]byte
}

// Counter is a monotonically increasing sharded counter. The zero value is
// not ready to use; obtain one from Registry.Counter.
type Counter struct {
	shards []counterShard
	mask   uint32
}

func newCounter() *Counter {
	return &Counter{shards: make([]counterShard, shardCount), mask: uint32(shardCount - 1)}
}

// Add increments the counter by n. Lock-free; safe for any number of
// concurrent callers.
func (c *Counter) Add(n uint64) {
	c.shards[shardIndex(c.mask)].v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value merges the shards into the counter's current total.
func (c *Counter) Value() uint64 {
	var total uint64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Gauge is a value that can go up and down (ring occupancy, active
// workers). A single atomic word: gauges are set/adjusted off the hot
// paths, so sharding would buy nothing.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the gauge's current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyBuckets spans 1µs to 60s exponentially — wide enough that
// both a real-clock exec (hundreds of ns to ms) and a virtual-clock device
// operation (ms to minutes of simulated time) land in resolved buckets.
var DefaultLatencyBuckets = []time.Duration{
	1 * time.Microsecond, 2500 * time.Nanosecond, 5 * time.Microsecond,
	10 * time.Microsecond, 25 * time.Microsecond, 50 * time.Microsecond,
	100 * time.Microsecond, 250 * time.Microsecond, 500 * time.Microsecond,
	1 * time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
	10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2500 * time.Millisecond, 5 * time.Second,
	10 * time.Second, 30 * time.Second, 60 * time.Second,
}

// histShard holds one shard's bucket counts and duration sum. counts has
// len(bounds)+1 entries; the final entry is the overflow (+Inf) bucket.
// The struct is padded so adjacent shards' sums never share a line; the
// counts slices are separate allocations and spread naturally.
type histShard struct {
	counts []atomic.Uint64
	sum    atomic.Int64 // nanoseconds
	_      [cacheLine - unsafe.Sizeof([]atomic.Uint64{}) - 8]byte
}

// Histogram is a fixed-bucket latency histogram with sharded lock-free
// observes. Bucket bounds are set at construction and never change; the
// total count is derived from the buckets at read time, so Observe pays
// exactly two atomic adds.
type Histogram struct {
	bounds []int64 // bucket upper bounds in nanoseconds, ascending
	shards []histShard
	mask   uint32
	// hint caches the last bucket index: latency streams cluster, so the
	// next observation usually lands in the same bucket and skips the
	// binary search. Purely a fast path — a stale or torn hint just falls
	// back to the search.
	hint atomic.Int32
	// ex holds one exemplar trace id per bucket (len(bounds)+1): the trace
	// id of the most recent traced observation that landed there, linking a
	// bucket back to a tree on /debug/spans. Last-writer-wins per bucket —
	// an exemplar is a sample, not an aggregate.
	ex []atomic.Uint64
}

func newHistogram(buckets []time.Duration) *Histogram {
	if len(buckets) == 0 {
		buckets = DefaultLatencyBuckets
	}
	bounds := make([]int64, len(buckets))
	prev := int64(-1)
	for i, b := range buckets {
		n := int64(b)
		if n <= prev {
			panic("obs: histogram buckets must be positive and strictly ascending")
		}
		bounds[i] = n
		prev = n
	}
	h := &Histogram{bounds: bounds, shards: make([]histShard, shardCount), mask: uint32(shardCount - 1),
		ex: make([]atomic.Uint64, len(bounds)+1)}
	for i := range h.shards {
		h.shards[i].counts = make([]atomic.Uint64, len(bounds)+1)
	}
	return h
}

// Observe records one duration. Negative durations clamp to zero; values
// above the last bound land in the overflow (+Inf) bucket. Lock-free, and
// shaped to inline into the caller: the common case — the observation
// lands in the same bucket as the last one — is a hint check plus two
// atomic adds; only a bucket change pays the (out-of-line) binary search.
func (h *Histogram) Observe(d time.Duration) {
	n := int64(d)
	if n < 0 {
		n = 0
	}
	// The hint may be any index in [0, len(bounds)]; len(bounds) is the
	// overflow bucket, valid when n exceeds the last bound — so streams
	// that sit above the top bound stay on the fast path too.
	i := int(h.hint.Load())
	if i > len(h.bounds) || (i > 0 && n <= h.bounds[i-1]) || (i < len(h.bounds) && h.bounds[i] < n) {
		i = h.rebucket(n)
	}
	s := &h.shards[shardIndex(h.mask)]
	s.counts[i].Add(1)
	s.sum.Add(n)
}

// ObserveExemplar records one duration and stamps the landing bucket's
// exemplar with traceID (when non-zero), so the rendered histogram can link
// each bucket to a recent trace. Off the untraced hot path: Observe never
// touches exemplars; instrumented callers opt in per observation.
func (h *Histogram) ObserveExemplar(d time.Duration, traceID uint64) {
	n := int64(d)
	if n < 0 {
		n = 0
	}
	// Same hint fast path as Observe: traced streams cluster in one bucket
	// too, and the traced hot path's budget is as tight as the untraced one.
	i := int(h.hint.Load())
	if i > len(h.bounds) || (i > 0 && n <= h.bounds[i-1]) || (i < len(h.bounds) && h.bounds[i] < n) {
		i = h.rebucket(n)
	}
	s := &h.shards[shardIndex(h.mask)]
	s.counts[i].Add(1)
	s.sum.Add(n)
	if traceID != 0 {
		h.ex[i].Store(traceID)
	}
}

// Exemplars returns the per-bucket exemplar trace ids (len(bounds)+1; the
// final entry is the overflow bucket). Zero means no traced observation has
// landed in that bucket.
func (h *Histogram) Exemplars() []uint64 {
	out := make([]uint64, len(h.ex))
	for i := range h.ex {
		out[i] = h.ex[i].Load()
	}
	return out
}

// rebucket is Observe's slow path: binary-search the bucket and refresh
// the hint. Kept out of Observe so Observe stays within the inlining
// budget.
//
//go:noinline
func (h *Histogram) rebucket(n int64) int {
	i := h.bucket(n)
	h.hint.Store(int32(i))
	return i
}

// bucket returns the index of the first bucket whose bound is >= n (the
// overflow index when none is). Binary search: the bound slice is small
// (≤64), so this is a handful of well-predicted comparisons.
func (h *Histogram) bucket(n int64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < n {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Count merges the shards into the total number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.shards {
		for j := range h.shards[i].counts {
			total += h.shards[i].counts[j].Load()
		}
	}
	return total
}

// Sum merges the shards into the total observed duration.
func (h *Histogram) Sum() time.Duration {
	var total int64
	for i := range h.shards {
		total += h.shards[i].sum.Load()
	}
	return time.Duration(total)
}

// counts merges the shards into one per-bucket (non-cumulative) count
// slice of len(bounds)+1; the final entry is the overflow bucket.
func (h *Histogram) counts() []uint64 {
	out := make([]uint64, len(h.bounds)+1)
	for i := range h.shards {
		for j := range h.shards[i].counts {
			out[j] += h.shards[i].counts[j].Load()
		}
	}
	return out
}
