package tracer

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"rad/internal/device"
	"rad/internal/obs/span"
	"rad/internal/simclock"
	"rad/internal/wire"
)

// Mode selects how a virtualized device executes commands (§III).
type Mode int

const (
	// ModeDirect executes locally and uploads the trace to the middlebox.
	ModeDirect Mode = iota + 1
	// ModeRemote sends the command to the middlebox for execution.
	ModeRemote
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeDirect:
		return "DIRECT"
	case ModeRemote:
		return "REMOTE"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// RemoteError is the client-side representation of an error the middlebox
// reported for a REMOTE-mode command (e.g. a device fault).
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return e.Msg }

// Config configures a tracing session.
type Config struct {
	// DefaultMode applies to devices without a per-device override.
	DefaultMode Mode
	// Modes overrides the mode per device name — the paper's hybrid
	// configurations, where new devices run DIRECT while their middlebox
	// cabling is sorted out.
	Modes map[string]Mode
	// Procedure and Run label the traces produced by this session
	// (supervised runs carry their procedure type; empty means unsupervised,
	// which the middlebox labels "unknown procedure").
	Procedure string
	Run       string
	// SyncTrace makes DIRECT-mode trace uploads synchronous. Asynchronous
	// uploads (the default) keep tracing off the command latency path as in
	// the paper; synchronous uploads give deterministic ordering under a
	// virtual clock.
	SyncTrace bool
}

// Session is a lab-computer-side tracing context: it hands out virtualized
// devices and owns the middlebox transport plus the background trace
// uploader. Close flushes pending DIRECT-mode uploads.
type Session struct {
	transport Transport
	clock     simclock.Clock

	mu      sync.Mutex
	cond    *sync.Cond // signalled when pending reaches zero
	cfg     Config
	locals  map[string]device.Device
	dropped uint64 // trace uploads that failed (tracing must not break the lab)
	pending int    // queued or in-flight async uploads

	traceCh chan wire.Request
	done    chan struct{}
	closed  bool

	// spans, when attached, records a client-side root span per Exec and
	// stamps its context into the outgoing request, stitching the
	// middlebox's server/exec spans under the client's across the wire.
	// Immutable after SetSpans; nil-safe.
	spans *span.Recorder
}

// NewSession creates a session over the given transport.
func NewSession(transport Transport, clock simclock.Clock, cfg Config) *Session {
	if cfg.DefaultMode == 0 {
		cfg.DefaultMode = ModeRemote
	}
	s := &Session{
		transport: transport,
		clock:     clock,
		cfg:       cfg,
		locals:    make(map[string]device.Device),
		traceCh:   make(chan wire.Request, 1024),
		done:      make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	go s.uploadLoop()
	return s
}

// uploadLoop drains asynchronous DIRECT-mode trace uploads.
func (s *Session) uploadLoop() {
	defer close(s.done)
	for req := range s.traceCh {
		_, err := s.transport.RoundTrip(req)
		s.mu.Lock()
		if err != nil {
			s.dropped++
		}
		s.pending--
		if s.pending == 0 {
			s.cond.Broadcast()
		}
		s.mu.Unlock()
	}
}

// SetSpans attaches a span flight recorder. Call before handing out
// Virtuals — it is not synchronized with in-flight Execs.
func (s *Session) SetSpans(r *span.Recorder) { s.spans = r }

// AttachLocal connects a device locally (required for DIRECT mode, where the
// device stays wired to the lab computer).
func (s *Session) AttachLocal(d device.Device) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.locals[d.Name()] = d
}

// SetLabels changes the procedure/run labels applied to subsequent traces.
func (s *Session) SetLabels(procedure, run string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.Procedure = procedure
	s.cfg.Run = run
}

// ModeFor returns the effective mode for a device name.
func (s *Session) ModeFor(name string) Mode {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.cfg.Modes[name]; ok {
		return m
	}
	return s.cfg.DefaultMode
}

// DroppedTraces reports how many DIRECT-mode trace uploads failed.
func (s *Session) DroppedTraces() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Virtual returns the virtualized proxy for the named device: the drop-in
// replacement the experiment script uses instead of the real device class.
// In DIRECT mode the device must have been attached with AttachLocal.
func (s *Session) Virtual(name string) (device.Device, error) {
	mode := s.ModeFor(name)
	if mode == ModeDirect {
		s.mu.Lock()
		_, ok := s.locals[name]
		s.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("tracer: device %q is in DIRECT mode but not attached locally", name)
		}
	}
	return &Virtual{session: s, name: name}, nil
}

// Close flushes pending trace uploads and closes the transport.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.traceCh)
	<-s.done
	return s.transport.Close()
}

// Flush blocks until queued asynchronous trace uploads have drained.
func (s *Session) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.pending > 0 {
		s.cond.Wait()
	}
}

// Virtual is the virtualized device class (Fig. 3): it satisfies the same
// interface as the original device, executes the original logic, and logs
// every access through the middlebox.
type Virtual struct {
	session *Session
	name    string
}

var _ device.Device = (*Virtual)(nil)

// Name implements device.Device.
func (v *Virtual) Name() string { return v.name }

// Exec implements device.Device, routing by the session's mode for this
// device.
func (v *Virtual) Exec(cmd device.Command) (string, error) {
	cmd.Device = v.name
	s := v.session

	s.mu.Lock()
	proc, run := s.cfg.Procedure, s.cfg.Run
	syncTrace := s.cfg.SyncTrace
	local := s.locals[v.name]
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return "", errors.New("tracer: session closed")
	}

	switch s.ModeFor(v.name) {
	case ModeDirect:
		if local == nil {
			return "", fmt.Errorf("tracer: device %q not attached locally", v.name)
		}
		start := s.clock.Now()
		value, err := local.Exec(cmd)
		end := s.clock.Now()
		req := wire.Request{
			Op: wire.OpTrace, Device: v.name, Name: cmd.Name, Args: cmd.Args,
			Value:      value,
			StartNanos: start.UnixNano(), EndNanos: end.UnixNano(),
			Procedure: proc, Run: run,
		}
		if err != nil {
			req.Error = err.Error()
		}
		if sctx := s.spans.NewContext(); sctx.Valid() {
			// The client span brackets the local exec; the upload request
			// carries its context so the middlebox's trace-ingest span
			// stitches under it even though the upload is asynchronous.
			req.TraceID, req.SpanID = sctx.TraceID, sctx.SpanID
			sp := span.Span{TraceID: sctx.TraceID, SpanID: sctx.SpanID,
				Name: "client.exec", Start: start, End: end}
			sp.SetAttr("device", v.name)
			sp.SetAttr("command", cmd.Name)
			sp.SetAttr("mode", "DIRECT")
			if err != nil {
				sp.Outcome = span.OutcomeError
			}
			s.spans.Record(sp)
		}
		if syncTrace {
			if _, terr := s.transport.RoundTrip(req); terr != nil {
				s.mu.Lock()
				s.dropped++
				s.mu.Unlock()
			}
		} else {
			s.mu.Lock()
			select {
			case s.traceCh <- req:
				s.pending++
			default:
				// Queue full: drop the trace rather than stall the lab.
				s.dropped++
			}
			s.mu.Unlock()
		}
		return value, err

	case ModeRemote:
		req := wire.Request{
			Op: wire.OpExec, Device: v.name, Name: cmd.Name, Args: cmd.Args,
			Procedure: proc, Run: run,
		}
		var sctx span.Context
		var start time.Time
		if s.spans.Enabled() {
			sctx = s.spans.NewContext()
			req.TraceID, req.SpanID = sctx.TraceID, sctx.SpanID
			start = s.clock.Now()
		}
		reply, err := s.transport.RoundTrip(req)
		if sctx.Valid() {
			sp := span.Span{TraceID: sctx.TraceID, SpanID: sctx.SpanID,
				Name: "client.exec", Start: start, End: s.clock.Now()}
			sp.SetAttr("device", v.name)
			sp.SetAttr("command", cmd.Name)
			sp.SetAttr("mode", "REMOTE")
			if err != nil || reply.Error != "" {
				sp.Outcome = span.OutcomeError
			}
			s.spans.Record(sp)
		}
		if err != nil {
			return "", fmt.Errorf("tracer: remote exec %s: %w", cmd.Name, err)
		}
		if reply.Error != "" {
			return reply.Value, &RemoteError{Msg: reply.Error}
		}
		return reply.Value, nil

	default:
		return "", fmt.Errorf("tracer: device %q has invalid mode", v.name)
	}
}
