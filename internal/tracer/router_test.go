package tracer

import (
	"errors"
	"testing"
	"time"

	"rad/internal/device"
	"rad/internal/device/c9"
	"rad/internal/device/tecan"
	"rad/internal/middlebox"
	"rad/internal/simclock"
	"rad/internal/store"
	"rad/internal/wire"
)

// TestRouterShardsDevicesAcrossMiddleboxes builds the paper's anticipated
// distributed deployment: two middleboxes, each owning a subset of devices,
// with one tracing session spanning both through a Router.
func TestRouterShardsDevicesAcrossMiddleboxes(t *testing.T) {
	clock := simclock.NewVirtual(time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC))

	sinkA, sinkB := store.NewMemStore(), store.NewMemStore()
	coreA := middlebox.NewCore(clock, sinkA)
	coreB := middlebox.NewCore(clock, sinkB)
	coreA.Register(c9.New(device.NewEnv(clock, 1)))
	coreB.Register(tecan.New(device.NewEnv(clock, 2)))

	router := NewRouter(nil)
	router.Route(device.C9, NewLocalTransport(coreA, clock, middlebox.NetworkProfile{}, 1))
	router.Route(device.Tecan, NewLocalTransport(coreB, clock, middlebox.NetworkProfile{}, 2))

	sess := NewSession(router, clock, Config{DefaultMode: ModeRemote, Procedure: "P1", Run: "r"})
	defer sess.Close()

	arm, err := sess.Virtual(device.C9)
	if err != nil {
		t.Fatal(err)
	}
	pump, err := sess.Virtual(device.Tecan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := arm.Exec(device.Command{Name: device.Init}); err != nil {
		t.Fatal(err)
	}
	if _, err := pump.Exec(device.Command{Name: device.Init}); err != nil {
		t.Fatal(err)
	}
	if _, err := arm.Exec(device.Command{Name: "MVNG"}); err != nil {
		t.Fatal(err)
	}
	if _, err := pump.Exec(device.Command{Name: "Q"}); err != nil {
		t.Fatal(err)
	}

	// Each middlebox logged exactly its own device's traffic.
	if got := sinkA.Len(); got != 2 {
		t.Errorf("middlebox A logged %d records, want 2", got)
	}
	if got := sinkB.Len(); got != 2 {
		t.Errorf("middlebox B logged %d records, want 2", got)
	}
	for _, r := range sinkA.All() {
		if r.Device != device.C9 {
			t.Errorf("middlebox A saw %s traffic", r.Device)
		}
	}
	for _, r := range sinkB.All() {
		if r.Device != device.Tecan {
			t.Errorf("middlebox B saw %s traffic", r.Device)
		}
	}
}

func TestRouterNoRoute(t *testing.T) {
	router := NewRouter(nil)
	_, err := router.RoundTrip(wire.Request{Op: wire.OpExec, Device: "Ghost", Name: "x"})
	if !errors.Is(err, ErrNoRoute) {
		t.Errorf("want ErrNoRoute, got %v", err)
	}
}

func TestRouterFallback(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	core := middlebox.NewCore(clock, nil)
	core.Register(c9.New(device.NewEnv(clock, 1)))
	fallback := NewLocalTransport(core, clock, middlebox.NetworkProfile{}, 1)
	router := NewRouter(fallback)

	// Unrouted devices and pings go to the fallback.
	reply, err := router.RoundTrip(wire.Request{ID: 1, Op: wire.OpPing})
	if err != nil || reply.Value != "pong" {
		t.Errorf("ping via fallback: %+v, %v", reply, err)
	}
	reply, err = router.RoundTrip(wire.Request{ID: 2, Op: wire.OpExec, Device: device.C9, Name: device.Init})
	if err != nil || reply.Error != "" {
		t.Errorf("exec via fallback: %+v, %v", reply, err)
	}
}

// closeCounter counts closes to verify dedup.
type closeCounter struct{ n int }

func (c *closeCounter) RoundTrip(req wire.Request) (wire.Reply, error) {
	return wire.Reply{ID: req.ID}, nil
}
func (c *closeCounter) Close() error { c.n++; return nil }

func TestRouterCloseDedupes(t *testing.T) {
	shared := &closeCounter{}
	router := NewRouter(shared)
	router.Route("A", shared)
	router.Route("B", shared)
	other := &closeCounter{}
	router.Route("C", other)
	if err := router.Close(); err != nil {
		t.Fatal(err)
	}
	if shared.n != 1 || other.n != 1 {
		t.Errorf("closes: shared %d, other %d; want 1 each", shared.n, other.n)
	}
	// Closed router rejects traffic; double close is harmless.
	if _, err := router.RoundTrip(wire.Request{Op: wire.OpPing}); err == nil {
		t.Error("closed router accepted traffic")
	}
	if err := router.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}
