package tracer

import (
	"errors"
	"fmt"
	"sync"

	"rad/internal/wire"
)

// Router implements Transport by routing each request to the middlebox
// responsible for its device — the client side of the distributed
// architecture the paper anticipates for growth beyond one middlebox ("as
// the number of devices grows from five to fifty … a single middlebox will
// not suffice", §VII). A session built on a Router traces transparently
// across any number of middleboxes.
type Router struct {
	mu       sync.RWMutex
	routes   map[string]Transport
	fallback Transport
	closed   bool
}

var _ Transport = (*Router)(nil)

// ErrNoRoute is returned for a request whose device has no route and no
// fallback transport exists.
var ErrNoRoute = errors.New("tracer: no route for device")

// NewRouter creates a router. fallback (which may be nil) receives requests
// for devices without explicit routes and protocol traffic such as pings.
func NewRouter(fallback Transport) *Router {
	return &Router{routes: make(map[string]Transport), fallback: fallback}
}

// Route directs the named device's traffic to t. Later calls replace
// earlier routes.
func (r *Router) Route(device string, t Transport) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.routes[device] = t
}

// transportFor picks the transport for one request.
func (r *Router) transportFor(req wire.Request) (Transport, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return nil, errors.New("tracer: router closed")
	}
	if req.Device != "" {
		if t, ok := r.routes[req.Device]; ok {
			return t, nil
		}
	}
	if r.fallback != nil {
		return r.fallback, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrNoRoute, req.Device)
}

// RoundTrip implements Transport.
func (r *Router) RoundTrip(req wire.Request) (wire.Reply, error) {
	t, err := r.transportFor(req)
	if err != nil {
		return wire.Reply{}, err
	}
	return t.RoundTrip(req)
}

// Close closes every distinct underlying transport once.
func (r *Router) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	seen := make(map[Transport]struct{})
	var firstErr error
	closeOnce := func(t Transport) {
		if t == nil {
			return
		}
		if _, done := seen[t]; done {
			return
		}
		seen[t] = struct{}{}
		if err := t.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, t := range r.routes {
		closeOnce(t)
	}
	closeOnce(r.fallback)
	return firstErr
}
