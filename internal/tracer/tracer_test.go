package tracer

import (
	"errors"
	"testing"
	"time"

	"rad/internal/device"
	"rad/internal/device/c9"
	"rad/internal/device/tecan"
	"rad/internal/middlebox"
	"rad/internal/simclock"
	"rad/internal/store"
)

// newRig builds a virtual-clock middlebox core with a C9 and Tecan attached,
// plus an in-process transport.
func newRig(t *testing.T) (*middlebox.Core, *store.MemStore, *simclock.Virtual, *c9.C9, *tecan.Tecan) {
	t.Helper()
	clock := simclock.NewVirtual(time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC))
	sink := store.NewMemStore()
	core := middlebox.NewCore(clock, sink)
	arm := c9.New(device.NewEnv(clock, 1))
	pump := tecan.New(device.NewEnv(clock, 2))
	core.Register(arm)
	core.Register(pump)
	return core, sink, clock, arm, pump
}

func TestRemoteModeExecutesViaMiddlebox(t *testing.T) {
	core, sink, clock, _, _ := newRig(t)
	transport := NewLocalTransport(core, clock, middlebox.NetworkProfile{}, 1)
	sess := NewSession(transport, clock, Config{DefaultMode: ModeRemote, Procedure: "P1", Run: "run-13"})
	defer sess.Close()

	dev, err := sess.Virtual(device.C9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Exec(device.Command{Name: device.Init}); err != nil {
		t.Fatal(err)
	}
	v, err := dev.Exec(device.Command{Name: "MVNG"})
	if err != nil {
		t.Fatal(err)
	}
	if v != "0 0 0 0" {
		t.Errorf("MVNG = %q", v)
	}
	recs := sink.All()
	if len(recs) != 2 {
		t.Fatalf("logged %d records", len(recs))
	}
	if recs[1].Mode != "REMOTE" || recs[1].Procedure != "P1" || recs[1].Run != "run-13" {
		t.Errorf("record = %+v", recs[1])
	}
}

func TestRemoteModeSurfacesDeviceError(t *testing.T) {
	core, _, clock, arm, _ := newRig(t)
	transport := NewLocalTransport(core, clock, middlebox.NetworkProfile{}, 1)
	sess := NewSession(transport, clock, Config{DefaultMode: ModeRemote})
	defer sess.Close()

	dev, err := sess.Virtual(device.C9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Exec(device.Command{Name: device.Init}); err != nil {
		t.Fatal(err)
	}
	arm.InjectFault("collision")
	_, err = dev.Exec(device.Command{Name: "ARM", Args: []string{"1", "2", "3"}})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want RemoteError, got %v", err)
	}
}

func TestDirectModeExecutesLocallyAndUploads(t *testing.T) {
	core, sink, clock, _, _ := newRig(t)
	// In DIRECT mode the lab computer has its own device connection.
	localArm := c9.New(device.NewEnv(clock, 9))
	transport := NewLocalTransport(core, clock, middlebox.NetworkProfile{}, 1)
	sess := NewSession(transport, clock, Config{
		DefaultMode: ModeDirect, Procedure: "Joystick", Run: "run-0", SyncTrace: true,
	})
	defer sess.Close()
	sess.AttachLocal(localArm)

	dev, err := sess.Virtual(device.C9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Exec(device.Command{Name: device.Init}); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Exec(device.Command{Name: "ARM", Args: []string{"5", "5", "5"}}); err != nil {
		t.Fatal(err)
	}
	recs := sink.All()
	if len(recs) != 2 {
		t.Fatalf("logged %d records", len(recs))
	}
	if recs[1].Mode != "DIRECT" {
		t.Errorf("mode = %q", recs[1].Mode)
	}
	if recs[1].Latency() <= 0 {
		t.Errorf("direct trace latency = %v", recs[1].Latency())
	}
}

func TestDirectModeErrorTracedAsException(t *testing.T) {
	core, sink, clock, _, _ := newRig(t)
	localArm := c9.New(device.NewEnv(clock, 9))
	transport := NewLocalTransport(core, clock, middlebox.NetworkProfile{}, 1)
	sess := NewSession(transport, clock, Config{DefaultMode: ModeDirect, SyncTrace: true})
	defer sess.Close()
	sess.AttachLocal(localArm)

	dev, _ := sess.Virtual(device.C9)
	if _, err := dev.Exec(device.Command{Name: device.Init}); err != nil {
		t.Fatal(err)
	}
	localArm.InjectFault("crash")
	_, err := dev.Exec(device.Command{Name: "HOME"})
	var fe *device.FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("want local FaultError, got %v", err)
	}
	recs := sink.All()
	last := recs[len(recs)-1]
	if last.Exception == "" {
		t.Error("fault not traced as exception")
	}
}

func TestHybridConfiguration(t *testing.T) {
	core, sink, clock, _, _ := newRig(t)
	localPump := tecan.New(device.NewEnv(clock, 9))
	transport := NewLocalTransport(core, clock, middlebox.NetworkProfile{}, 1)
	sess := NewSession(transport, clock, Config{
		DefaultMode: ModeRemote,
		Modes:       map[string]Mode{device.Tecan: ModeDirect},
		SyncTrace:   true,
	})
	defer sess.Close()
	sess.AttachLocal(localPump)

	if got := sess.ModeFor(device.C9); got != ModeRemote {
		t.Errorf("C9 mode = %v", got)
	}
	if got := sess.ModeFor(device.Tecan); got != ModeDirect {
		t.Errorf("Tecan mode = %v", got)
	}

	armDev, err := sess.Virtual(device.C9)
	if err != nil {
		t.Fatal(err)
	}
	pumpDev, err := sess.Virtual(device.Tecan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := armDev.Exec(device.Command{Name: device.Init}); err != nil {
		t.Fatal(err)
	}
	if _, err := pumpDev.Exec(device.Command{Name: device.Init}); err != nil {
		t.Fatal(err)
	}
	recs := sink.All()
	if len(recs) != 2 {
		t.Fatalf("logged %d records", len(recs))
	}
	modes := map[string]string{}
	for _, r := range recs {
		modes[r.Device] = r.Mode
	}
	if modes[device.C9] != "REMOTE" || modes[device.Tecan] != "DIRECT" {
		t.Errorf("modes = %v", modes)
	}
}

func TestVirtualRequiresLocalAttachmentInDirectMode(t *testing.T) {
	core, _, clock, _, _ := newRig(t)
	transport := NewLocalTransport(core, clock, middlebox.NetworkProfile{}, 1)
	sess := NewSession(transport, clock, Config{DefaultMode: ModeDirect})
	defer sess.Close()
	if _, err := sess.Virtual(device.C9); err == nil {
		t.Error("Virtual should fail without a local attachment in DIRECT mode")
	}
}

func TestAsyncTraceUploadFlushes(t *testing.T) {
	core, sink, clock, _, _ := newRig(t)
	localArm := c9.New(device.NewEnv(clock, 9))
	transport := NewLocalTransport(core, clock, middlebox.NetworkProfile{}, 1)
	sess := NewSession(transport, clock, Config{DefaultMode: ModeDirect}) // async
	defer sess.Close()
	sess.AttachLocal(localArm)

	dev, _ := sess.Virtual(device.C9)
	for i := 0; i < 20; i++ {
		if _, err := dev.Exec(device.Command{Name: device.Init}); err != nil {
			t.Fatal(err)
		}
	}
	sess.Flush()
	if got := sink.Len(); got != 20 {
		t.Errorf("after flush, sink has %d records, want 20", got)
	}
	if sess.DroppedTraces() != 0 {
		t.Errorf("dropped = %d", sess.DroppedTraces())
	}
}

func TestSetLabelsMidSession(t *testing.T) {
	core, sink, clock, _, _ := newRig(t)
	transport := NewLocalTransport(core, clock, middlebox.NetworkProfile{}, 1)
	sess := NewSession(transport, clock, Config{DefaultMode: ModeRemote})
	defer sess.Close()

	dev, _ := sess.Virtual(device.C9)
	if _, err := dev.Exec(device.Command{Name: device.Init}); err != nil {
		t.Fatal(err)
	}
	sess.SetLabels("P2", "run-17")
	if _, err := dev.Exec(device.Command{Name: "MVNG"}); err != nil {
		t.Fatal(err)
	}
	recs := sink.All()
	if recs[0].Procedure != store.UnknownProcedure {
		t.Errorf("pre-label procedure = %q", recs[0].Procedure)
	}
	if recs[1].Procedure != "P2" || recs[1].Run != "run-17" {
		t.Errorf("post-label record = %+v", recs[1])
	}
}

func TestSessionClosedRejectsExec(t *testing.T) {
	core, _, clock, _, _ := newRig(t)
	transport := NewLocalTransport(core, clock, middlebox.NetworkProfile{}, 1)
	sess := NewSession(transport, clock, Config{DefaultMode: ModeRemote})
	dev, _ := sess.Virtual(device.C9)
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Exec(device.Command{Name: device.Init}); err == nil {
		t.Error("exec after close should fail")
	}
	// Close is idempotent.
	if err := sess.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestLocalTransportChargesNetworkToClock(t *testing.T) {
	core, _, clock, _, _ := newRig(t)
	profile := middlebox.NetworkProfile{OneWayDelay: 1 * time.Millisecond}
	transport := NewLocalTransport(core, clock, profile, 1)
	sess := NewSession(transport, clock, Config{DefaultMode: ModeRemote})
	defer sess.Close()

	dev, _ := sess.Virtual(device.C9)
	before := clock.Now()
	if _, err := dev.Exec(device.Command{Name: device.Init}); err != nil {
		t.Fatal(err)
	}
	elapsed := clock.Now().Sub(before)
	// 2 ms network + 2-5 ms device processing.
	if elapsed < 4*time.Millisecond {
		t.Errorf("elapsed %v, want >= 4ms (network + device)", elapsed)
	}
}

func TestModeString(t *testing.T) {
	if ModeDirect.String() != "DIRECT" || ModeRemote.String() != "REMOTE" {
		t.Error("mode strings wrong")
	}
	if Mode(0).String() == "" {
		t.Error("invalid mode should still stringify")
	}
}

// End-to-end over real TCP: session → server → device → trace sink.
func TestEndToEndOverTCP(t *testing.T) {
	clock := simclock.Real{}
	sink := store.NewMemStore()
	core := middlebox.NewCore(clock, sink)
	core.Register(c9.New(device.NewEnv(clock, 1)))
	srv := middlebox.NewServer(core, middlebox.NetworkProfile{}, 1)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	transport, err := DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(transport, clock, Config{DefaultMode: ModeRemote, Procedure: "Joystick", Run: "run-1"})
	defer sess.Close()

	dev, err := sess.Virtual(device.C9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Exec(device.Command{Name: device.Init}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := dev.Exec(device.Command{Name: "ARM", Args: []string{"1", "2", "3"}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := sink.Len(); got != 11 {
		t.Errorf("sink has %d records, want 11", got)
	}
	for _, r := range sink.All() {
		if r.Run != "run-1" {
			t.Fatalf("record run = %q", r.Run)
		}
	}
}
