// Package tracer is the reproduction's RATracer: the non-intrusive tracing
// framework retrofitted onto the automation pipeline (§III).
//
// Go has no monkey patching, so the paper's "virtualized classes" map onto
// interface substitution: every device the lab code talks to is wrapped in a
// Virtual proxy that satisfies the same device.Device interface, executes
// the original logic, and logs every access. Enabling tracing is a one-line
// change — construct devices through a Session instead of directly — which
// mirrors the paper's single-import ideal.
//
// A Session runs each device in one of two modes, configurable per device
// (hybrid configurations, §III):
//
//   - DIRECT: the command executes on the locally attached device; the trace
//     record is uploaded to the middlebox, which only collects data.
//   - REMOTE: the command is sent to the middlebox, which owns the device,
//     executes the command, logs it, and returns the response.
package tracer

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"

	"rad/internal/middlebox"
	"rad/internal/simclock"
	"rad/internal/wire"
)

// Transport carries requests from the lab computer to the middlebox.
type Transport interface {
	// RoundTrip sends one request and waits for its reply.
	RoundTrip(req wire.Request) (wire.Reply, error)
	Close() error
}

// TCPTransport is a Transport over a real TCP connection using the wire
// protocol (v1 JSON or the negotiated v2 binary framing). Requests are
// serialized: the middlebox protocol is strictly request/reply per
// connection.
type TCPTransport struct {
	mu     sync.Mutex
	conn   net.Conn
	wc     *wire.Conn
	nextID uint64
	closed bool
}

var _ Transport = (*TCPTransport)(nil)

// DialTCP connects to a middlebox server over the v1 JSON protocol — the
// unupgraded client an upgraded middlebox must keep serving.
func DialTCP(addr string) (*TCPTransport, error) {
	return DialTCPProto(addr, wire.ProtoV1)
}

// DialTCPProto is DialTCP with an explicit protocol selector: wire.ProtoAuto
// attempts the v2 binary handshake and falls back to v1, wire.ProtoV2 fails
// unless the middlebox speaks the binary protocol.
func DialTCPProto(addr string, proto wire.Proto) (*TCPTransport, error) {
	conn, wc, err := wire.Dial(addr, proto, nil)
	if err != nil {
		return nil, fmt.Errorf("tracer: dial middlebox %s: %w", addr, err)
	}
	return &TCPTransport{conn: conn, wc: wc}, nil
}

// Protocol reports the wire protocol version the transport negotiated.
func (t *TCPTransport) Protocol() wire.Version { return t.wc.Version() }

// RoundTrip implements Transport.
func (t *TCPTransport) RoundTrip(req wire.Request) (wire.Reply, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return wire.Reply{}, errors.New("tracer: transport closed")
	}
	t.nextID++
	req.ID = t.nextID
	if err := t.wc.WriteFrame(req); err != nil {
		return wire.Reply{}, fmt.Errorf("tracer: send request: %w", err)
	}
	var reply wire.Reply
	if err := t.wc.ReadFrame(&reply); err != nil {
		return wire.Reply{}, fmt.Errorf("tracer: read reply: %w", err)
	}
	if reply.ID != req.ID {
		return wire.Reply{}, fmt.Errorf("tracer: reply id %d for request %d", reply.ID, req.ID)
	}
	return reply, nil
}

// Close closes the underlying connection.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	return t.conn.Close()
}

// LocalTransport is an in-process Transport that calls straight into a
// middlebox Core, charging an emulated network profile to the injected
// clock. Under a virtual clock this reproduces REMOTE-mode timing without
// real sockets, which is how the three-month campaign is generated quickly
// and deterministically.
type LocalTransport struct {
	core    *middlebox.Core
	clock   simclock.Clock
	profile middlebox.NetworkProfile

	mu     sync.Mutex
	rng    *rand.Rand
	nextID uint64
}

var _ Transport = (*LocalTransport)(nil)

// NewLocalTransport builds an in-process transport to core.
func NewLocalTransport(core *middlebox.Core, clock simclock.Clock, profile middlebox.NetworkProfile, seed uint64) *LocalTransport {
	return &LocalTransport{
		core:    core,
		clock:   clock,
		profile: profile,
		rng:     rand.New(rand.NewPCG(seed, seed^0xe7037ed1a0b428db)),
	}
}

// RoundTrip implements Transport.
func (t *LocalTransport) RoundTrip(req wire.Request) (wire.Reply, error) {
	t.mu.Lock()
	t.nextID++
	req.ID = t.nextID
	in := t.profile.Delay(t.rng)
	out := t.profile.Delay(t.rng)
	t.mu.Unlock()

	t.clock.Sleep(in)
	reply := t.core.Handle(req)
	t.clock.Sleep(out)
	return reply, nil
}

// Close implements Transport; a local transport holds no resources.
func (t *LocalTransport) Close() error { return nil }
