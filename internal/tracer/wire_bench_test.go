package tracer

import (
	"testing"
	"time"

	"rad/internal/device"
	"rad/internal/device/c9"
	"rad/internal/middlebox"
	"rad/internal/simclock"
	"rad/internal/store"
	"rad/internal/wire"
)

// BenchmarkWireExecTCP prices a full REMOTE-mode exec — session, transport,
// socket, middlebox, device, and back — under each wire protocol. The codec
// is a small slice of this round trip (see BenchmarkWireExecV2 in
// internal/wire for the isolated marshalling cost), so the spread here shows
// what v2 is worth once a real deployment's syscalls are in the bill.
func BenchmarkWireExecTCP(b *testing.B) {
	for _, proto := range []wire.Proto{wire.ProtoV1, wire.ProtoV2} {
		b.Run(proto.String(), func(b *testing.B) {
			clock := simclock.NewVirtual(time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC))
			core := middlebox.NewCore(clock, store.NewMemStore())
			core.Register(c9.New(device.NewEnv(clock, 1)))
			srv := middlebox.NewServer(core, middlebox.NetworkProfile{}, 1)
			addr, err := srv.Start("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()

			transport, err := DialTCPProto(addr, proto)
			if err != nil {
				b.Fatal(err)
			}
			defer transport.Close()
			if got := transport.Protocol(); got != wire.Version(proto) {
				b.Fatalf("negotiated %s, want %s", got, proto)
			}
			sess := NewSession(transport, clock, Config{DefaultMode: ModeRemote, Procedure: "bench"})
			defer sess.Close()
			arm, err := sess.Virtual("C9")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := arm.Exec(device.Command{Name: device.Init}); err != nil {
				b.Fatal(err)
			}

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := arm.Exec(device.Command{Name: "HOME"}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
