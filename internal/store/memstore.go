package store

import (
	"sort"
	"sync"
)

// Sink consumes trace records. The middlebox logs every command, response,
// and exception to one or more sinks (Fig. 1, step 6).
type Sink interface {
	Append(r Record) error
}

// Notifier is implemented by sequencing sinks (MemStore, tracedb.DB) that
// can invoke a commit hook with seq-assigned records. The hook fires exactly
// once per record, in sequence order, after the record is visible to the
// sink's readers — the contract a live-stream broker needs to guarantee
// gap-free snapshot-then-follow handoff.
//
// The hook runs while the sink's internal lock is held: it must be fast,
// must not call back into the sink, and must not retain the slice (the
// backing array is reused).
type Notifier interface {
	SetOnCommit(fn func(recs []Record))
}

// MemStore is an in-memory document store standing in for RATracer's MongoDB
// instance. It assigns sequence numbers, keeps insertion order, and offers
// the query shapes the analyses need. It is safe for concurrent use.
type MemStore struct {
	mu       sync.RWMutex
	records  []Record
	nextSeq  uint64
	onCommit func(recs []Record)
}

var (
	_ Sink     = (*MemStore)(nil)
	_ Notifier = (*MemStore)(nil)
)

// NewMemStore returns an empty store.
func NewMemStore() *MemStore { return &MemStore{} }

// SetOnCommit installs the commit hook (see Notifier). Only one hook is
// held; a later call replaces the earlier one.
func (s *MemStore) SetOnCommit(fn func(recs []Record)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onCommit = fn
}

// Append stores the record, assigning its sequence number.
func (s *MemStore) Append(r Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.Seq = s.nextSeq
	s.nextSeq++
	s.records = append(s.records, r)
	if s.onCommit != nil {
		s.onCommit(s.records[len(s.records)-1:])
	}
	return nil
}

// AppendBatch stores all records under one lock acquisition, assigning
// consecutive sequence numbers in slice order — the flush boundary batched
// producers (store.Batcher, the campaign merge) rely on.
func (s *MemStore) AppendBatch(recs []Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cap(s.records)-len(s.records) < len(recs) {
		grown := make([]Record, len(s.records), len(s.records)+len(recs))
		copy(grown, s.records)
		s.records = grown
	}
	start := len(s.records)
	for _, r := range recs {
		r.Seq = s.nextSeq
		s.nextSeq++
		s.records = append(s.records, r)
	}
	if s.onCommit != nil && len(recs) > 0 {
		s.onCommit(s.records[start:])
	}
	return nil
}

var _ BatchSink = (*MemStore)(nil)

// Len returns the number of stored records.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

// All returns a copy of every record in insertion order.
func (s *MemStore) All() []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Record, len(s.records))
	copy(out, s.records)
	return out
}

// Filter returns the records matching pred, in insertion order.
func (s *MemStore) Filter(pred func(Record) bool) []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Record
	for _, r := range s.records {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// ByDevice returns the records for one device.
func (s *MemStore) ByDevice(device string) []Record {
	return s.Filter(func(r Record) bool { return r.Device == device })
}

// ByProcedure returns the records labelled with the given procedure type.
func (s *MemStore) ByProcedure(proc string) []Record {
	return s.Filter(func(r Record) bool { return r.Procedure == proc })
}

// ByRun returns the records of one supervised run.
func (s *MemStore) ByRun(run string) []Record {
	return s.Filter(func(r Record) bool { return r.Run == run })
}

// Runs returns the distinct supervised run identifiers, sorted.
func (s *MemStore) Runs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := make(map[string]bool)
	for _, r := range s.records {
		if r.Run != "" {
			set[r.Run] = true
		}
	}
	out := make([]string, 0, len(set))
	for run := range set {
		out = append(out, run)
	}
	sort.Strings(out)
	return out
}

// CountByCommand returns the number of trace objects per command type
// ("Device.Name"), the Fig. 5(a) distribution.
func (s *MemStore) CountByCommand() map[string]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m := make(map[string]int)
	for _, r := range s.records {
		m[r.Key()]++
	}
	return m
}

// CountByDevice returns the number of trace objects per device, the Fig. 5(a)
// legend totals.
func (s *MemStore) CountByDevice() map[string]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m := make(map[string]int)
	for _, r := range s.records {
		m[r.Device]++
	}
	return m
}

// CommandSequence returns the ordered command names (bare names, as used by
// the n-gram analyses in §V) for records matching pred.
func (s *MemStore) CommandSequence(pred func(Record) bool) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for _, r := range s.records {
		if pred == nil || pred(r) {
			out = append(out, r.Name)
		}
	}
	return out
}
