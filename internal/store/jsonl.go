package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// JSONLWriter streams records to w as one JSON document per line — the
// document-store-friendly export format. It implements Sink.
type JSONLWriter struct {
	w       *bufio.Writer
	nextSeq uint64
}

var _ Sink = (*JSONLWriter)(nil)

// NewJSONLWriter wraps w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{w: bufio.NewWriter(w)}
}

// Append writes one record as a JSON line.
func (j *JSONLWriter) Append(r Record) error {
	if r.Seq == 0 {
		r.Seq = j.nextSeq
	}
	j.nextSeq = r.Seq + 1
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("store: marshal record: %w", err)
	}
	if _, err := j.w.Write(b); err != nil {
		return fmt.Errorf("store: write record: %w", err)
	}
	if err := j.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("store: write newline: %w", err)
	}
	return nil
}

// AppendBatch writes the records as one burst of lines; the encoding is
// identical to per-record Append.
func (j *JSONLWriter) AppendBatch(recs []Record) error {
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			return err
		}
	}
	return j.Flush()
}

var _ BatchSink = (*JSONLWriter)(nil)

// Flush flushes buffered lines to the underlying writer.
func (j *JSONLWriter) Flush() error {
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("store: flush: %w", err)
	}
	return nil
}

// ReadJSONL parses a JSONL export produced by JSONLWriter.
func ReadJSONL(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("store: jsonl line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("store: scan jsonl: %w", err)
	}
	return out, nil
}

// Tee fans a record out to several sinks, stopping at the first error — used
// when the middlebox logs to both the document store and a CSV file.
type Tee []Sink

var _ Sink = Tee(nil)

// Append forwards r to every sink in order.
func (t Tee) Append(r Record) error {
	for _, s := range t {
		if err := s.Append(r); err != nil {
			return err
		}
	}
	return nil
}

// AppendBatch forwards the batch to every sink in order, preserving each
// sink's own batching fast path.
func (t Tee) AppendBatch(recs []Record) error {
	for _, s := range t {
		if err := AppendAll(s, recs); err != nil {
			return err
		}
	}
	return nil
}

var _ BatchSink = Tee(nil)
