package store

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func sampleRecord(i int) Record {
	t0 := time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Second)
	return Record{
		Time: t0, EndTime: t0.Add(5 * time.Millisecond),
		Device: "C9", Name: "ARM", Args: []string{"10", "20", "30"},
		Response: "ok", Procedure: "Joystick", Run: "run-0", Mode: "REMOTE",
	}
}

func TestMemStoreAppendAssignsSeq(t *testing.T) {
	s := NewMemStore()
	for i := 0; i < 5; i++ {
		if err := s.Append(sampleRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	all := s.All()
	if len(all) != 5 {
		t.Fatalf("len = %d, want 5", len(all))
	}
	for i, r := range all {
		if r.Seq != uint64(i) {
			t.Errorf("record %d has seq %d", i, r.Seq)
		}
	}
}

func TestMemStoreQueries(t *testing.T) {
	s := NewMemStore()
	recs := []Record{
		{Device: "C9", Name: "ARM", Procedure: "Joystick", Run: "run-0"},
		{Device: "C9", Name: "MVNG", Procedure: "Joystick", Run: "run-0"},
		{Device: "Tecan", Name: "Q", Procedure: "P1", Run: "run-13"},
		{Device: "UR3e", Name: "move_joints", Procedure: UnknownProcedure},
		{Device: "C9", Name: "ARM", Procedure: UnknownProcedure},
	}
	for _, r := range recs {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s.ByDevice("C9")); got != 3 {
		t.Errorf("ByDevice(C9) = %d, want 3", got)
	}
	if got := len(s.ByProcedure("Joystick")); got != 2 {
		t.Errorf("ByProcedure(Joystick) = %d, want 2", got)
	}
	if got := len(s.ByRun("run-13")); got != 1 {
		t.Errorf("ByRun(run-13) = %d, want 1", got)
	}
	runs := s.Runs()
	if len(runs) != 2 || runs[0] != "run-0" || runs[1] != "run-13" {
		t.Errorf("Runs() = %v", runs)
	}
	byCmd := s.CountByCommand()
	if byCmd["C9.ARM"] != 2 {
		t.Errorf("CountByCommand[C9.ARM] = %d, want 2", byCmd["C9.ARM"])
	}
	byDev := s.CountByDevice()
	if byDev["C9"] != 3 || byDev["Tecan"] != 1 {
		t.Errorf("CountByDevice = %v", byDev)
	}
	seq := s.CommandSequence(func(r Record) bool { return r.Run == "run-0" })
	if len(seq) != 2 || seq[0] != "ARM" || seq[1] != "MVNG" {
		t.Errorf("CommandSequence = %v", seq)
	}
	all := s.CommandSequence(nil)
	if len(all) != 5 {
		t.Errorf("CommandSequence(nil) = %d entries, want 5", len(all))
	}
}

func TestMemStoreConcurrentAppend(t *testing.T) {
	s := NewMemStore()
	var wg sync.WaitGroup
	const n = 50
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				_ = s.Append(Record{Device: "IKA", Name: "IN_PV_4"})
			}
		}()
	}
	wg.Wait()
	if s.Len() != 4*n {
		t.Errorf("Len = %d, want %d", s.Len(), 4*n)
	}
	// Sequence numbers must be unique.
	seen := make(map[uint64]bool)
	for _, r := range s.All() {
		if seen[r.Seq] {
			t.Fatalf("duplicate seq %d", r.Seq)
		}
		seen[r.Seq] = true
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewCSVWriter(&buf)
	want := []Record{sampleRecord(0), sampleRecord(1)}
	want[1].Exception = "hardware fault"
	want[1].Args = nil
	for i, r := range want {
		r.Seq = uint64(i + 1)
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records", len(got))
	}
	if got[0].Device != "C9" || got[0].Name != "ARM" || len(got[0].Args) != 3 {
		t.Errorf("record 0 mismatch: %+v", got[0])
	}
	if got[1].Exception != "hardware fault" || got[1].Args != nil {
		t.Errorf("record 1 mismatch: %+v", got[1])
	}
	if !got[0].Time.Equal(want[0].Time) {
		t.Errorf("time mismatch: %v vs %v", got[0].Time, want[0].Time)
	}
}

func TestCSVReadRejectsRaggedRows(t *testing.T) {
	// csv.Reader enforces consistent field counts, so a ragged row must
	// surface as an error rather than silent truncation.
	in := "seq,time,end_time,device,name,args,response,exception,procedure,run,mode\n1,bad\n"
	if _, err := ReadCSV(strings.NewReader(in)); err == nil {
		t.Error("want error for ragged csv row")
	}
}

func TestCSVReadEmpty(t *testing.T) {
	got, err := ReadCSV(strings.NewReader(""))
	if err != nil || got != nil {
		t.Errorf("empty csv: got %v, %v", got, err)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	for i := 0; i < 3; i++ {
		r := sampleRecord(i)
		r.Seq = uint64(i + 10)
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d records", len(got))
	}
	if got[0].Seq != 10 || got[2].Seq != 12 {
		t.Errorf("seqs = %d..%d, want 10..12", got[0].Seq, got[2].Seq)
	}
	if got[1].Latency() != 5*time.Millisecond {
		t.Errorf("latency = %v, want 5ms", got[1].Latency())
	}
}

func TestJSONLReadSkipsBlankLinesRejectsGarbage(t *testing.T) {
	got, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || len(got) != 0 {
		t.Errorf("blank lines: got %v, %v", got, err)
	}
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Error("want error for garbage jsonl")
	}
}

func TestTeeFansOut(t *testing.T) {
	a, b := NewMemStore(), NewMemStore()
	tee := Tee{a, b}
	if err := tee.Append(sampleRecord(0)); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 1 || b.Len() != 1 {
		t.Errorf("tee lens = %d, %d; want 1, 1", a.Len(), b.Len())
	}
}

func TestRecordHelpers(t *testing.T) {
	r := sampleRecord(0)
	if r.Key() != "C9.ARM" {
		t.Errorf("Key = %q", r.Key())
	}
	if r.Anomalous() {
		t.Error("clean record reported anomalous")
	}
	r.Exception = "crash"
	if !r.Anomalous() {
		t.Error("exception record not anomalous")
	}
}

func TestCSVWriterAssignsSeqWhenZero(t *testing.T) {
	var buf bytes.Buffer
	w := NewCSVWriter(&buf)
	r := sampleRecord(0) // Seq == 0
	if err := w.Append(r); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(r); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Seq != 0 || got[1].Seq != 1 {
		t.Errorf("seqs = %d, %d; want 0, 1", got[0].Seq, got[1].Seq)
	}
}
