package store

import (
	"sync/atomic"

	"rad/internal/obs/span"
)

// FailoverSink makes a primary sink's Append path lossless under write
// errors: a record or batch the primary refuses is spilled to a
// disk-backed DeadLetterQueue instead of being dropped, and the append
// reports success — the record is accepted, just deferred. Re-ingest the
// queue into the primary once it recovers (tracedb.DB.Reingest, or any
// Drain loop).
//
// Failover is at-least-once at the batch granularity: if a per-record
// fallback half-commits a batch before erroring, the whole batch is
// spilled and the committed prefix will appear twice after re-ingest.
// With the repo's sinks (MemStore, tracedb) batches commit atomically, so
// this does not arise in practice.
type FailoverSink struct {
	primary Sink
	dlq     *DeadLetterQueue

	// spans, when attached, records a "dlq.spill" span for every traced
	// record the primary refused — the spill becomes visible in the
	// record's trace tree, not just in aggregate counters. Immutable after
	// SetSpans; nil-safe.
	spans      *span.Recorder
	spanTenant string

	primaryErrs atomic.Uint64
}

var (
	_ Sink      = (*FailoverSink)(nil)
	_ BatchSink = (*FailoverSink)(nil)
)

// NewFailoverSink wraps primary with spill-to-dlq failover.
func NewFailoverSink(primary Sink, dlq *DeadLetterQueue) *FailoverSink {
	return &FailoverSink{primary: primary, dlq: dlq}
}

// SetSpans attaches a span flight recorder for spill provenance; tenant
// (may be empty) tags the spans. Call before serving traffic.
func (s *FailoverSink) SetSpans(r *span.Recorder, tenant string) {
	s.spans = r
	s.spanTenant = tenant
}

// recordSpills emits one "dlq.spill" span per traced record in a spilled
// batch. Point events at the record's own end time: the store has no clock
// (by design — virtual-clock campaigns must stay deterministic), and the
// spill's significance is which trace it happened to, not how long the
// disk write took.
func (s *FailoverSink) recordSpills(recs []Record) {
	if !s.spans.Enabled() {
		return
	}
	for i := range recs {
		r := &recs[i]
		if r.TraceID == 0 {
			continue
		}
		sp := span.Span{TraceID: r.TraceID, SpanID: s.spans.NewID(), ParentID: r.SpanID,
			Name: "dlq.spill", Tenant: s.spanTenant, Outcome: span.OutcomeError,
			Start: r.EndTime, End: r.EndTime}
		sp.SetAttr("device", r.Device)
		s.spans.Record(sp)
	}
}

// Append implements Sink. It only fails when both the primary and the
// dead-letter disk refuse the record.
func (s *FailoverSink) Append(r Record) error {
	if err := s.primary.Append(r); err != nil {
		s.primaryErrs.Add(1)
		s.recordSpills([]Record{r})
		return s.dlq.Spill([]Record{r})
	}
	return nil
}

// AppendBatch implements BatchSink; a refused batch is spilled whole,
// preserving the flush boundary for re-ingest.
func (s *FailoverSink) AppendBatch(recs []Record) error {
	if err := AppendAll(s.primary, recs); err != nil {
		s.primaryErrs.Add(1)
		s.recordSpills(recs)
		return s.dlq.Spill(recs)
	}
	return nil
}

// SetOnCommit implements Notifier when the primary does, so a broker
// attached above a failover sink still sees authoritative sequence
// numbers. Spilled records are not committed and therefore not published
// until re-ingest lands them in the primary.
func (s *FailoverSink) SetOnCommit(fn func(recs []Record)) {
	if n, ok := s.primary.(Notifier); ok {
		n.SetOnCommit(fn)
	}
}

// FailoverStats counts the sink's failover activity.
type FailoverStats struct {
	PrimaryErrors uint64 // appends the primary refused
	DLQStats             // what the queue absorbed
}

// Stats snapshots the failover counters.
func (s *FailoverSink) Stats() FailoverStats {
	return FailoverStats{
		PrimaryErrors: s.primaryErrs.Load(),
		DLQStats:      s.dlq.Stats(),
	}
}
