package store

import (
	"testing"

	"rad/internal/obs"
)

// TestObsStoreFailoverMetrics: primary refusals and DLQ spills surface as
// pull-based counters; the memstore gauge tracks occupancy.
func TestObsStoreFailoverMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	mem := NewMemStore()
	mem.Observe(reg)

	q, err := OpenDLQ(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	primary := &refusingSink{inner: mem}
	fo := NewFailoverSink(primary, q)
	fo.Observe(reg)

	rec := Record{Device: "C9", Name: "MVNG"}
	if err := fo.Append(rec); err != nil { // refused -> spilled
		t.Fatal(err)
	}
	if err := fo.AppendBatch([]Record{rec, rec}); err != nil {
		t.Fatal(err)
	}
	primary.healthy = true
	if err := fo.Append(rec); err != nil {
		t.Fatal(err)
	}

	counters := make(map[string]uint64)
	for _, c := range reg.Snapshot().Counters {
		counters[c.Name] = c.Value
	}
	if counters["rad_store_primary_errors_total"] != 2 {
		t.Errorf("primary errors = %d, want 2", counters["rad_store_primary_errors_total"])
	}
	if counters["rad_store_spilled_batches_total"] != 2 {
		t.Errorf("spilled batches = %d, want 2", counters["rad_store_spilled_batches_total"])
	}
	if counters["rad_store_spilled_records_total"] != 3 {
		t.Errorf("spilled records = %d, want 3", counters["rad_store_spilled_records_total"])
	}
	for _, g := range reg.Snapshot().Gauges {
		if g.Name == "rad_store_records" && g.Value != float64(mem.Len()) {
			t.Errorf("records gauge = %v, want %d", g.Value, mem.Len())
		}
	}
}
