// Package store implements the trace-sink side of RATracer: the trace-record
// schema ("timestamp, function, arguments, return values, exceptions" —
// Fig. 3), an in-memory document store standing in for the paper's MongoDB
// instance, and CSV/JSONL writers standing in for its .csv export.
package store

import (
	"strings"
	"time"
)

// Record is one trace object in the command dataset: a single command
// instance with everything RATracer logs about it (§III, Fig. 3).
type Record struct {
	// Seq is a monotonically increasing sequence number assigned by the sink.
	Seq uint64 `json:"seq"`
	// Time and EndTime bracket the command's execution as observed at the
	// interception point.
	Time    time.Time `json:"time"`
	EndTime time.Time `json:"endTime"`
	// Device and Name identify the command type (one of the 52 in the
	// catalog); Args are the stringified arguments.
	Device string   `json:"device"`
	Name   string   `json:"name"`
	Args   []string `json:"args,omitempty"`
	// Response is the device's return value; Exception carries the error
	// string when the command failed (e.g. a collision fault).
	Response  string `json:"response,omitempty"`
	Exception string `json:"exception,omitempty"`
	// Procedure labels supervised runs with their procedure type (P1–P6,
	// Joystick); everything else is labelled UnknownProcedure (§IV).
	Procedure string `json:"procedure"`
	// Run identifies the specific supervised procedure run (e.g. "run-17");
	// empty for unsupervised activity.
	Run string `json:"run,omitempty"`
	// Mode records whether the command was traced in DIRECT or REMOTE mode.
	Mode string `json:"mode,omitempty"`

	// TraceID/SpanID carry the in-process trace context of the exec that
	// produced this record (internal/obs/span). They are observability-only
	// plumbing — deliberately excluded from JSON, CSV, the tracedb codec,
	// and campaign digests — so the persisted dataset and its byte-identity
	// contracts are unchanged by tracing. Zero means untraced.
	TraceID uint64 `json:"-"`
	SpanID  uint64 `json:"-"`
}

// UnknownProcedure is the label applied to all commands that were not part
// of a supervised run: "all other commands are labeled 'unknown procedure'".
const UnknownProcedure = "unknown procedure"

// Key returns the command-type identifier "Device.Name".
func (r Record) Key() string { return r.Device + "." + r.Name }

// Latency returns the command's observed response time.
func (r Record) Latency() time.Duration { return r.EndTime.Sub(r.Time) }

// Anomalous reports whether the record carries an exception, the per-record
// signal of a hardware fault.
func (r Record) Anomalous() bool { return r.Exception != "" }

// joinArgs renders arguments for the CSV export.
func joinArgs(args []string) string { return strings.Join(args, "|") }

// splitArgs parses the CSV argument encoding back into a slice.
func splitArgs(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, "|")
}
