package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestDLQSpillAndDrain(t *testing.T) {
	dir := t.TempDir()
	q, err := OpenDLQ(dir)
	if err != nil {
		t.Fatal(err)
	}
	batch1 := []Record{sampleRecord(0), sampleRecord(1)}
	batch2 := []Record{sampleRecord(2)}
	if err := q.Spill(batch1); err != nil {
		t.Fatal(err)
	}
	if err := q.Spill(batch2); err != nil {
		t.Fatal(err)
	}
	if err := q.Spill(nil); err != nil {
		t.Fatal("empty spill must be a no-op")
	}
	pending, err := q.Pending()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 2 {
		t.Fatalf("pending = %v, want 2 spill files", pending)
	}
	if st := q.Stats(); st.SpilledBatches != 2 || st.SpilledRecords != 3 {
		t.Errorf("stats = %+v", st)
	}

	// Drain re-delivers in spill order, batch boundaries intact.
	var drained [][]Record
	n, err := q.Drain(func(recs []Record) error {
		drained = append(drained, recs)
		return nil
	})
	if err != nil || n != 3 {
		t.Fatalf("drain = %d, %v", n, err)
	}
	if len(drained) != 2 || len(drained[0]) != 2 || len(drained[1]) != 1 {
		t.Fatalf("drained shapes = %v", drained)
	}
	if drained[0][0].Name != "ARM" || !drained[1][0].Time.After(drained[0][1].Time) {
		t.Errorf("drain order broken: %+v", drained)
	}
	if pending, _ := q.Pending(); len(pending) != 0 {
		t.Errorf("files survived a successful drain: %v", pending)
	}
}

func TestDLQDrainKeepsFailedSpill(t *testing.T) {
	q, err := OpenDLQ(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := q.Spill([]Record{sampleRecord(i)}); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("primary still down")
	calls := 0
	n, err := q.Drain(func(recs []Record) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || n != 1 {
		t.Fatalf("drain = %d, %v", n, err)
	}
	// Spill 0 is gone (ingested), spills 1 and 2 remain for the next drain:
	// at-least-once, never lost.
	pending, _ := q.Pending()
	if len(pending) != 2 {
		t.Fatalf("pending after failed drain = %v", pending)
	}
	n, err = q.Drain(func(recs []Record) error { return nil })
	if err != nil || n != 2 {
		t.Fatalf("recovery drain = %d, %v", n, err)
	}
}

func TestDLQNumberingSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	q, err := OpenDLQ(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Spill([]Record{sampleRecord(0)}); err != nil {
		t.Fatal(err)
	}
	if err := q.Spill([]Record{sampleRecord(1)}); err != nil {
		t.Fatal(err)
	}
	// A crash-leftover temp file must be ignored, not drained.
	if err := os.WriteFile(filepath.Join(dir, "dlq-000099.jsonl.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	q2, err := OpenDLQ(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := q2.Spill([]Record{sampleRecord(2)}); err != nil {
		t.Fatal(err)
	}
	pending, _ := q2.Pending()
	if len(pending) != 3 {
		t.Fatalf("pending after reopen = %v", pending)
	}
	if base := filepath.Base(pending[2]); base != "dlq-000002.jsonl" {
		t.Errorf("reopened queue numbered its spill %s, want dlq-000002.jsonl", base)
	}
	n, err := q2.Drain(func(recs []Record) error { return nil })
	if err != nil || n != 3 {
		t.Fatalf("drain across restart = %d, %v", n, err)
	}
}

// refusingSink fails every append until healed.
type refusingSink struct {
	inner   *MemStore
	healthy bool
}

func (s *refusingSink) Append(r Record) error {
	if !s.healthy {
		return errors.New("disk full")
	}
	return s.inner.Append(r)
}

func TestFailoverSinkSpillsAndRecovers(t *testing.T) {
	q, err := OpenDLQ(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	primary := &refusingSink{inner: NewMemStore()}
	sink := NewFailoverSink(primary, q)

	// Primary down: every append still succeeds from the caller's view.
	if err := sink.Append(sampleRecord(0)); err != nil {
		t.Fatalf("failover append: %v", err)
	}
	if err := sink.AppendBatch([]Record{sampleRecord(1), sampleRecord(2)}); err != nil {
		t.Fatalf("failover batch: %v", err)
	}
	if primary.inner.Len() != 0 {
		t.Fatal("records reached a refusing primary")
	}
	st := sink.Stats()
	if st.PrimaryErrors != 2 || st.SpilledRecords != 3 {
		t.Errorf("stats = %+v", st)
	}

	// Primary heals: new appends land directly, the backlog drains in.
	primary.healthy = true
	if err := sink.Append(sampleRecord(3)); err != nil {
		t.Fatal(err)
	}
	n, err := q.Drain(func(recs []Record) error { return AppendAll(primary, recs) })
	if err != nil || n != 3 {
		t.Fatalf("drain = %d, %v", n, err)
	}
	if primary.inner.Len() != 4 {
		t.Fatalf("primary holds %d records, want 4", primary.inner.Len())
	}
	if st := sink.Stats(); st.PrimaryErrors != 2 {
		t.Errorf("healed appends counted as errors: %+v", st)
	}
}
