package store

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// FuzzReadCSV hardens the CSV import path against arbitrary files.
func FuzzReadCSV(f *testing.F) {
	var valid bytes.Buffer
	w := NewCSVWriter(&valid)
	_ = w.Append(Record{Time: time.Unix(1, 0), EndTime: time.Unix(2, 0),
		Device: "C9", Name: "ARM", Args: []string{"1", "2"}, Procedure: "P1"})
	_ = w.Flush()
	f.Add(valid.String())
	f.Add("")
	f.Add("seq,time\n1,notatime\n")
	f.Add("a,b,c\n\"unterminated")

	f.Fuzz(func(t *testing.T, data string) {
		_, _ = ReadCSV(strings.NewReader(data)) // must not panic
	})
}

// FuzzReadJSONL hardens the JSONL import path.
func FuzzReadJSONL(f *testing.F) {
	var valid bytes.Buffer
	w := NewJSONLWriter(&valid)
	_ = w.Append(Record{Device: "Tecan", Name: "Q"})
	_ = w.Flush()
	f.Add(valid.String())
	f.Add("")
	f.Add("{broken json\n")
	f.Add("{\"device\":\"C9\"}\nnot json\n")

	f.Fuzz(func(t *testing.T, data string) {
		_, _ = ReadJSONL(strings.NewReader(data)) // must not panic
	})
}

// FuzzRecordRoundTrip: any record written by the CSV writer reads back
// field-identical.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add("C9", "ARM", "1|2", "ok", "", "P1", "run-3", "REMOTE")
	f.Add("", "", "", "", "err", "", "", "")
	f.Fuzz(func(t *testing.T, dev, name, args, resp, exc, proc, run, mode string) {
		// The CSV arg encoding uses '|' as a separator and csv quoting
		// handles the rest; reject only embedded separator ambiguity.
		if strings.Contains(args, "|") && args != "1|2" {
			t.Skip()
		}
		in := Record{
			Seq: 1, Time: time.Unix(100, 0).UTC(), EndTime: time.Unix(101, 0).UTC(),
			Device: dev, Name: name, Response: resp, Exception: exc,
			Procedure: proc, Run: run, Mode: mode,
		}
		if args != "" {
			in.Args = strings.Split(args, "|")
		}
		var buf bytes.Buffer
		w := NewCSVWriter(&buf)
		if err := w.Append(in); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		out, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("read back: %v", err)
		}
		if len(out) != 1 {
			t.Fatalf("%d records", len(out))
		}
		got := out[0]
		if got.Device != in.Device || got.Name != in.Name || got.Response != in.Response ||
			got.Exception != in.Exception || got.Procedure != in.Procedure ||
			got.Run != in.Run || got.Mode != in.Mode || len(got.Args) != len(in.Args) {
			t.Fatalf("round trip mismatch:\n in:  %+v\n out: %+v", in, got)
		}
	})
}
