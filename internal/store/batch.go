package store

// BatchSink is implemented by sinks that can consume many records with one
// call — one lock acquisition (MemStore) or one buffered write burst
// (CSVWriter, JSONLWriter) instead of per-record synchronization.
type BatchSink interface {
	Sink
	AppendBatch(recs []Record) error
}

// AppendAll forwards recs to sink, using AppendBatch when the sink supports
// it and falling back to per-record Append otherwise.
func AppendAll(sink Sink, recs []Record) error {
	if bs, ok := sink.(BatchSink); ok {
		return bs.AppendBatch(recs)
	}
	for _, r := range recs {
		if err := sink.Append(r); err != nil {
			return err
		}
	}
	return nil
}

// Batcher buffers Append calls locally and forwards them to the underlying
// sink in batches. It gives a hot path (a device session, a middlebox
// connection) a private, lock-free staging area with an explicit flush
// boundary: the shared sink's lock is taken once per batch instead of once
// per record.
//
// A Batcher is intentionally NOT safe for concurrent use — each concurrent
// session owns its own Batcher and only the flushes synchronize. Records
// are not visible in the underlying sink until Flush (or an automatic flush
// when the buffer reaches its size). Callers must Flush before reading the
// sink or discarding the Batcher.
type Batcher struct {
	sink Sink
	buf  []Record
	size int
}

var _ Sink = (*Batcher)(nil)

// DefaultBatchSize is the automatic flush threshold when NewBatcher is
// given a non-positive size.
const DefaultBatchSize = 256

// NewBatcher wraps sink with a flush-bounded buffer of the given size.
func NewBatcher(sink Sink, size int) *Batcher {
	if size <= 0 {
		size = DefaultBatchSize
	}
	return &Batcher{sink: sink, buf: make([]Record, 0, size), size: size}
}

// Append stages the record, flushing to the underlying sink when the buffer
// is full.
func (b *Batcher) Append(r Record) error {
	b.buf = append(b.buf, r)
	if len(b.buf) >= b.size {
		return b.Flush()
	}
	return nil
}

// Flush forwards all staged records to the underlying sink.
func (b *Batcher) Flush() error {
	if len(b.buf) == 0 {
		return nil
	}
	err := AppendAll(b.sink, b.buf)
	b.buf = b.buf[:0]
	return err
}

// Pending returns the number of staged records not yet flushed.
func (b *Batcher) Pending() int { return len(b.buf) }
