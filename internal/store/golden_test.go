package store

import (
	"bytes"
	"testing"
	"time"
)

// TestGoldenExportFormats pins the exact bytes of the two export formats:
// the CSV column order (seq, time, end_time, device, name, args, response,
// exception, procedure, run, mode, with args joined by "|") and the JSONL
// field order and omitempty behavior. Downstream IDS tooling parses these
// files positionally; any drift here is a breaking change and must show up
// as a diff in this test, not in a consumer.
func TestGoldenExportFormats(t *testing.T) {
	full := Record{
		Seq:       7,
		Time:      time.Date(2021, 12, 16, 10, 30, 0, 500_000_000, time.UTC),
		EndTime:   time.Date(2021, 12, 16, 10, 30, 1, 500_000_000, time.UTC),
		Device:    "Quantos",
		Name:      "start_dosing",
		Args:      []string{"sub.1", "amount=5.0"},
		Response:  "ok",
		Procedure: "P2",
		Run:       "2021-12-16_run1",
		Mode:      "DIRECT",
	}
	minimal := Record{
		// Seq 0: the writer assigns the next sequence (8, after the record
		// above) — also pinned here.
		Time:      time.Date(2021, 12, 16, 10, 30, 2, 0, time.UTC),
		EndTime:   time.Date(2021, 12, 16, 10, 30, 2, 0, time.UTC),
		Device:    "UR3e",
		Name:      "movej",
		Exception: "boom",
		Procedure: "P1",
	}

	var csvBuf bytes.Buffer
	cw := NewCSVWriter(&csvBuf)
	if err := cw.AppendBatch([]Record{full, minimal}); err != nil {
		t.Fatal(err)
	}
	wantCSV := "seq,time,end_time,device,name,args,response,exception,procedure,run,mode\n" +
		"7,2021-12-16T10:30:00.5Z,2021-12-16T10:30:01.5Z,Quantos,start_dosing,sub.1|amount=5.0,ok,,P2,2021-12-16_run1,DIRECT\n" +
		"8,2021-12-16T10:30:02Z,2021-12-16T10:30:02Z,UR3e,movej,,,boom,P1,,\n"
	if got := csvBuf.String(); got != wantCSV {
		t.Errorf("csv export drifted:\ngot:\n%s\nwant:\n%s", got, wantCSV)
	}

	var jsonlBuf bytes.Buffer
	jw := NewJSONLWriter(&jsonlBuf)
	if err := jw.AppendBatch([]Record{full, minimal}); err != nil {
		t.Fatal(err)
	}
	wantJSONL := `{"seq":7,"time":"2021-12-16T10:30:00.5Z","endTime":"2021-12-16T10:30:01.5Z","device":"Quantos","name":"start_dosing","args":["sub.1","amount=5.0"],"response":"ok","procedure":"P2","run":"2021-12-16_run1","mode":"DIRECT"}` + "\n" +
		`{"seq":8,"time":"2021-12-16T10:30:02Z","endTime":"2021-12-16T10:30:02Z","device":"UR3e","name":"movej","exception":"boom","procedure":"P1"}` + "\n"
	if got := jsonlBuf.String(); got != wantJSONL {
		t.Errorf("jsonl export drifted:\ngot:\n%s\nwant:\n%s", got, wantJSONL)
	}

	// Both formats round-trip to the same records they encoded.
	csvRecs, err := ReadCSV(bytes.NewReader(csvBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	jsonRecs, err := ReadJSONL(bytes.NewReader(jsonlBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(csvRecs) != 2 || len(jsonRecs) != 2 {
		t.Fatalf("round-trip lost rows: csv %d, jsonl %d", len(csvRecs), len(jsonRecs))
	}
	for i, want := range []Record{full, minimal} {
		if want.Seq == 0 {
			want.Seq = 8
		}
		for name, got := range map[string]Record{"csv": csvRecs[i], "jsonl": jsonRecs[i]} {
			if got.Seq != want.Seq || !got.Time.Equal(want.Time) || got.Device != want.Device ||
				got.Name != want.Name || got.Response != want.Response ||
				got.Exception != want.Exception || got.Procedure != want.Procedure ||
				got.Run != want.Run || got.Mode != want.Mode {
				t.Errorf("%s round-trip record %d mismatch:\n got  %+v\n want %+v", name, i, got, want)
			}
		}
	}
}
