package store

import "rad/internal/obs"

// Observe registers the in-memory store's occupancy gauge into reg.
// Entirely pull-based — the append path is untouched.
func (s *MemStore) Observe(reg *obs.Registry) {
	reg.SetHelp("rad_store_records", "Records held by the in-memory store.")
	reg.GaugeFunc("rad_store_records", func() float64 { return float64(s.Len()) })
}

// Observe registers the failover sink's spill accounting into reg:
// primary refusals and what the dead-letter queue absorbed. Entirely
// pull-based mirrors of the counters the sink already keeps.
func (s *FailoverSink) Observe(reg *obs.Registry) {
	reg.SetHelp("rad_store_primary_errors_total", "Appends the primary sink refused (spilled to the DLQ).")
	reg.CounterFunc("rad_store_primary_errors_total", s.primaryErrs.Load)
	reg.SetHelp("rad_store_spilled_batches_total", "Batches spilled to the dead-letter queue.")
	reg.CounterFunc("rad_store_spilled_batches_total", func() uint64 {
		return s.dlq.Stats().SpilledBatches
	})
	reg.SetHelp("rad_store_spilled_records_total", "Records spilled to the dead-letter queue.")
	reg.CounterFunc("rad_store_spilled_records_total", func() uint64 {
		return s.dlq.Stats().SpilledRecords
	})
	s.dlq.Observe(reg)
}

// Observe registers the queue's drain/reingest outcome counters into reg —
// the recovery half of the spill accounting above, so an operator sees
// records both leave the primary and come back. Pass extra label pairs
// (e.g. "tenant", id) to scope the counters in a fleet.
func (q *DeadLetterQueue) Observe(reg *obs.Registry, labels ...string) {
	reg.SetHelp("rad_store_drained_batches_total", "Spill files re-ingested from the dead-letter queue.")
	reg.CounterFunc("rad_store_drained_batches_total", q.drainedBatches.Load, labels...)
	reg.SetHelp("rad_store_drained_records_total", "Records re-ingested from the dead-letter queue.")
	reg.CounterFunc("rad_store_drained_records_total", q.drainedRecords.Load, labels...)
	reg.SetHelp("rad_store_drain_errors_total", "Dead-letter drain attempts that failed partway.")
	reg.CounterFunc("rad_store_drain_errors_total", q.drainErrors.Load, labels...)
}
