package store

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// csvHeader is the column layout of the CSV export, mirroring the fields
// RATracer logs per access.
var csvHeader = []string{
	"seq", "time", "end_time", "device", "name", "args",
	"response", "exception", "procedure", "run", "mode",
}

// CSVWriter streams records to w in CSV form, writing the header on the
// first record. It implements Sink.
type CSVWriter struct {
	w       *csv.Writer
	wrote   bool
	nextSeq uint64
}

var _ Sink = (*CSVWriter)(nil)

// NewCSVWriter wraps w.
func NewCSVWriter(w io.Writer) *CSVWriter {
	return &CSVWriter{w: csv.NewWriter(w)}
}

// Append writes one record row (plus the header before the first row). The
// stored sequence number is preserved if nonzero, otherwise assigned.
func (c *CSVWriter) Append(r Record) error {
	if !c.wrote {
		if err := c.w.Write(csvHeader); err != nil {
			return fmt.Errorf("store: write csv header: %w", err)
		}
		c.wrote = true
	}
	if r.Seq == 0 {
		r.Seq = c.nextSeq
	}
	c.nextSeq = r.Seq + 1
	row := []string{
		strconv.FormatUint(r.Seq, 10),
		r.Time.Format(time.RFC3339Nano),
		r.EndTime.Format(time.RFC3339Nano),
		r.Device,
		r.Name,
		joinArgs(r.Args),
		r.Response,
		r.Exception,
		r.Procedure,
		r.Run,
		r.Mode,
	}
	if err := c.w.Write(row); err != nil {
		return fmt.Errorf("store: write csv row: %w", err)
	}
	return nil
}

// AppendBatch writes the records as one burst of rows; the encoding is
// identical to per-record Append.
func (c *CSVWriter) AppendBatch(recs []Record) error {
	for _, r := range recs {
		if err := c.Append(r); err != nil {
			return err
		}
	}
	return c.Flush()
}

var _ BatchSink = (*CSVWriter)(nil)

// Flush flushes buffered rows to the underlying writer.
func (c *CSVWriter) Flush() error {
	c.w.Flush()
	return c.w.Error()
}

// ReadCSV parses a CSV export produced by CSVWriter.
func ReadCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("store: read csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, nil
	}
	records := make([]Record, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != len(csvHeader) {
			return nil, fmt.Errorf("store: csv row %d has %d columns, want %d", i+2, len(row), len(csvHeader))
		}
		seq, err := strconv.ParseUint(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("store: csv row %d seq: %w", i+2, err)
		}
		t0, err := time.Parse(time.RFC3339Nano, row[1])
		if err != nil {
			return nil, fmt.Errorf("store: csv row %d time: %w", i+2, err)
		}
		t1, err := time.Parse(time.RFC3339Nano, row[2])
		if err != nil {
			return nil, fmt.Errorf("store: csv row %d end_time: %w", i+2, err)
		}
		records = append(records, Record{
			Seq: seq, Time: t0, EndTime: t1,
			Device: row[3], Name: row[4], Args: splitArgs(row[5]),
			Response: row[6], Exception: row[7],
			Procedure: row[8], Run: row[9], Mode: row[10],
		})
	}
	return records, nil
}
