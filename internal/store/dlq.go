package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DeadLetterQueue is a disk-backed spill area for trace batches a primary
// sink refused: each failed batch lands as its own JSONL spill file
// (written to a temp name, then renamed, so a crash never leaves a
// half-readable spill), and Drain re-ingests the files in spill order once
// the primary recovers. Together with FailoverSink it is the middlebox's
// guarantee that an accepted record survives a flaky store.
type DeadLetterQueue struct {
	dir string

	mu   sync.Mutex
	next int // next spill file id

	spilledBatches atomic.Uint64
	spilledRecords atomic.Uint64
}

const (
	dlqPrefix = "dlq-"
	dlqSuffix = ".jsonl"
)

// OpenDLQ opens (or creates) a dead-letter directory. Spill numbering
// resumes after the highest existing spill file, so a re-opened queue
// never overwrites pending dead letters.
func OpenDLQ(dir string) (*DeadLetterQueue, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dlq: %w", err)
	}
	q := &DeadLetterQueue{dir: dir}
	files, err := q.Pending()
	if err != nil {
		return nil, err
	}
	for _, f := range files {
		if id, ok := parseSpillID(filepath.Base(f)); ok && id >= q.next {
			q.next = id + 1
		}
	}
	return q, nil
}

// Dir returns the queue's directory.
func (q *DeadLetterQueue) Dir() string { return q.dir }

func spillName(id int) string { return fmt.Sprintf("%s%06d%s", dlqPrefix, id, dlqSuffix) }

func parseSpillID(name string) (int, bool) {
	if !strings.HasPrefix(name, dlqPrefix) || !strings.HasSuffix(name, dlqSuffix) {
		return 0, false
	}
	id, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, dlqPrefix), dlqSuffix))
	if err != nil || id < 0 {
		return 0, false
	}
	return id, true
}

// Spill persists one failed batch as a new spill file. The write goes to a
// temporary name first and is renamed into place, so Drain never observes
// a torn spill.
func (q *DeadLetterQueue) Spill(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	id := q.next
	final := filepath.Join(q.dir, spillName(id))
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("dlq: spill: %w", err)
	}
	w := NewJSONLWriter(f)
	if err := w.AppendBatch(recs); err == nil {
		err = w.Flush()
	} else {
		_ = w.Flush()
	}
	if err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("dlq: spill: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("dlq: spill: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("dlq: spill: %w", err)
	}
	q.next = id + 1
	q.spilledBatches.Add(1)
	q.spilledRecords.Add(uint64(len(recs)))
	return nil
}

// Pending returns the queue's spill files, oldest first.
func (q *DeadLetterQueue) Pending() ([]string, error) {
	entries, err := os.ReadDir(q.dir)
	if err != nil {
		return nil, fmt.Errorf("dlq: %w", err)
	}
	type spill struct {
		id   int
		path string
	}
	var spills []spill
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if id, ok := parseSpillID(e.Name()); ok {
			spills = append(spills, spill{id, filepath.Join(q.dir, e.Name())})
		}
	}
	sort.Slice(spills, func(i, j int) bool { return spills[i].id < spills[j].id })
	paths := make([]string, len(spills))
	for i, s := range spills {
		paths[i] = s.path
	}
	return paths, nil
}

// Drain re-ingests every pending spill, oldest first: each file's batch is
// handed to fn and the file is deleted only after fn succeeds, so a crash
// mid-drain re-delivers (at-least-once) rather than loses. It returns the
// number of records re-ingested; on error, already-drained files stay
// deleted and the failing spill remains pending.
func (q *DeadLetterQueue) Drain(fn func(recs []Record) error) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	files, err := q.Pending()
	if err != nil {
		return 0, err
	}
	total := 0
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return total, fmt.Errorf("dlq: drain %s: %w", path, err)
		}
		recs, err := ReadJSONL(f)
		_ = f.Close()
		if err != nil {
			return total, fmt.Errorf("dlq: drain %s: %w", path, err)
		}
		if err := fn(recs); err != nil {
			return total, fmt.Errorf("dlq: drain %s: %w", path, err)
		}
		if err := os.Remove(path); err != nil {
			return total, fmt.Errorf("dlq: drain %s: %w", path, err)
		}
		total += len(recs)
	}
	return total, nil
}

// DLQStats counts what the queue has absorbed since it was opened.
type DLQStats struct {
	SpilledBatches uint64
	SpilledRecords uint64
}

// Stats snapshots the spill counters (this process's spills only; pending
// files from an earlier run are visible through Pending, not here).
func (q *DeadLetterQueue) Stats() DLQStats {
	return DLQStats{
		SpilledBatches: q.spilledBatches.Load(),
		SpilledRecords: q.spilledRecords.Load(),
	}
}
