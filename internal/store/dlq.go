package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DeadLetterQueue is a disk-backed spill area for trace batches a primary
// sink refused: each failed batch lands as its own JSONL spill file
// (written to a temp name, then renamed, so a crash never leaves a
// half-readable spill), and Drain re-ingests the files in spill order once
// the primary recovers. Together with FailoverSink it is the middlebox's
// guarantee that an accepted record survives a flaky store.
type DeadLetterQueue struct {
	dir string

	mu   sync.Mutex
	next int // next spill file id

	spilledBatches atomic.Uint64
	spilledRecords atomic.Uint64

	// Drain/Reingest outcome accounting: recoveries were invisible in the
	// metrics while spills were counted, so a fleet operator could see
	// records leave the primary but never see them come back.
	drainedBatches atomic.Uint64
	drainedRecords atomic.Uint64
	drainErrors    atomic.Uint64
}

const (
	dlqPrefix = "dlq-"
	dlqSuffix = ".jsonl"
)

// OpenDLQ opens (or creates) a dead-letter directory. Spill numbering
// resumes after the highest existing spill file, so a re-opened queue
// never overwrites pending dead letters.
func OpenDLQ(dir string) (*DeadLetterQueue, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dlq: %w", err)
	}
	q := &DeadLetterQueue{dir: dir}
	files, err := q.Pending()
	if err != nil {
		return nil, err
	}
	for _, f := range files {
		if id, ok := parseSpillID(filepath.Base(f)); ok && id >= q.next {
			q.next = id + 1
		}
	}
	return q, nil
}

// Dir returns the queue's directory.
func (q *DeadLetterQueue) Dir() string { return q.dir }

func spillName(id int) string { return fmt.Sprintf("%s%06d%s", dlqPrefix, id, dlqSuffix) }

func parseSpillID(name string) (int, bool) {
	if !strings.HasPrefix(name, dlqPrefix) || !strings.HasSuffix(name, dlqSuffix) {
		return 0, false
	}
	id, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, dlqPrefix), dlqSuffix))
	if err != nil || id < 0 {
		return 0, false
	}
	return id, true
}

// Spill persists one failed batch as a new spill file. The write goes to a
// temporary name first and is renamed into place, so Drain never observes
// a torn spill.
func (q *DeadLetterQueue) Spill(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	id := q.next
	final := filepath.Join(q.dir, spillName(id))
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("dlq: spill: %w", err)
	}
	w := NewJSONLWriter(f)
	if err := w.AppendBatch(recs); err == nil {
		err = w.Flush()
	} else {
		_ = w.Flush()
	}
	if err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("dlq: spill: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("dlq: spill: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("dlq: spill: %w", err)
	}
	q.next = id + 1
	q.spilledBatches.Add(1)
	q.spilledRecords.Add(uint64(len(recs)))
	return nil
}

// Pending returns the queue's spill files, oldest first.
func (q *DeadLetterQueue) Pending() ([]string, error) {
	entries, err := os.ReadDir(q.dir)
	if err != nil {
		return nil, fmt.Errorf("dlq: %w", err)
	}
	type spill struct {
		id   int
		path string
	}
	var spills []spill
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if id, ok := parseSpillID(e.Name()); ok {
			spills = append(spills, spill{id, filepath.Join(q.dir, e.Name())})
		}
	}
	sort.Slice(spills, func(i, j int) bool { return spills[i].id < spills[j].id })
	paths := make([]string, len(spills))
	for i, s := range spills {
		paths[i] = s.path
	}
	return paths, nil
}

// Drain re-ingests every pending spill, oldest first: each file's batch is
// handed to fn and the file is deleted only after fn succeeds, so a crash
// mid-drain re-delivers (at-least-once) rather than loses. It returns the
// number of records re-ingested; on error, already-drained files stay
// deleted and the failing spill remains pending.
func (q *DeadLetterQueue) Drain(fn func(recs []Record) error) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	files, err := q.Pending()
	if err != nil {
		q.drainErrors.Add(1)
		return 0, err
	}
	total := 0
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			q.drainErrors.Add(1)
			return total, fmt.Errorf("dlq: drain %s: %w", path, err)
		}
		recs, err := ReadJSONL(f)
		_ = f.Close()
		if err != nil {
			q.drainErrors.Add(1)
			return total, fmt.Errorf("dlq: drain %s: %w", path, err)
		}
		if err := fn(recs); err != nil {
			q.drainErrors.Add(1)
			return total, fmt.Errorf("dlq: drain %s: %w", path, err)
		}
		if err := os.Remove(path); err != nil {
			q.drainErrors.Add(1)
			return total, fmt.Errorf("dlq: drain %s: %w", path, err)
		}
		total += len(recs)
		q.drainedBatches.Add(1)
		q.drainedRecords.Add(uint64(len(recs)))
	}
	return total, nil
}

// DLQStats counts what the queue has absorbed — and given back — since it
// was opened.
type DLQStats struct {
	SpilledBatches uint64
	SpilledRecords uint64
	// Recoveries: spill files successfully re-ingested by Drain (which also
	// backs tracedb.Reingest), and drain attempts that failed partway.
	DrainedBatches uint64
	DrainedRecords uint64
	DrainErrors    uint64
}

// Stats snapshots the spill and drain counters (this process's activity
// only; pending files from an earlier run are visible through Pending, not
// here).
func (q *DeadLetterQueue) Stats() DLQStats {
	return DLQStats{
		SpilledBatches: q.spilledBatches.Load(),
		SpilledRecords: q.spilledRecords.Load(),
		DrainedBatches: q.drainedBatches.Load(),
		DrainedRecords: q.drainedRecords.Load(),
		DrainErrors:    q.drainErrors.Load(),
	}
}

// ValidTenantID reports whether id is usable as a tenant namespace: 1–64
// bytes of [A-Za-z0-9._-], with "." and ".." rejected. The alphabet is
// path-safe by construction (no separators, no traversal), so a tenant ID
// arriving off the wire can name a DLQ subdirectory without sanitization.
func ValidTenantID(id string) bool {
	if len(id) == 0 || len(id) > 64 || id == "." || id == ".." {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// OpenTenantDLQ opens tenant's dead-letter directory under root
// (root/tenants/<id>), validating the ID so a wire-supplied tenant can
// never escape the root. Every tenant spills into its own namespace;
// draining one tenant never touches another's dead letters.
func OpenTenantDLQ(root, tenant string) (*DeadLetterQueue, error) {
	if !ValidTenantID(tenant) {
		return nil, fmt.Errorf("dlq: invalid tenant id %q", tenant)
	}
	return OpenDLQ(filepath.Join(root, "tenants", tenant))
}
