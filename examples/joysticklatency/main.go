// Joystick latency: the Fig. 4 experiment as a runnable program. A middlebox
// serves the simulated N9 over real loopback TCP; joystick button-press
// sequences replay against it in DIRECT, REMOTE, and CLOUD deployments; the
// program prints the response-time box statistics the paper plots.
package main

import (
	"fmt"
	"log"

	"rad"
)

func main() {
	fmt.Println("replaying joystick sequences against a live middlebox (real time)...")
	res, err := rad.Fig4ResponseTime(rad.Fig4Config{
		Sequences:           3,
		CommandsPerSequence: 20,
		Seed:                1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(rad.RenderFig4(res))

	// The paper's conclusions, computed from the measurement:
	byMode := map[string]float64{}
	for _, m := range res.Modes {
		byMode[m.Mode] = m.Mean
	}
	fmt.Println()
	fmt.Printf("REMOTE overhead over DIRECT: %.2f ms (paper: ≈2 ms)\n",
		byMode["REMOTE"]-byMode["DIRECT"])
	fmt.Printf("CLOUD response time: %.1f ms — an order of magnitude above the local modes\n",
		byMode["CLOUD"])
	fmt.Println("but still far below robot-arm motion timescales (seconds), so cloud")
	fmt.Println("deployment of the middlebox is within the realm of feasibility (§III).")
}
