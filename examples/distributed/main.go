// Distributed middleboxes: the deployment the paper's §VII anticipates for
// growth beyond one middlebox ("as the number of devices grows from five to
// fifty … a single middlebox will not suffice"). Two middlebox servers run
// over real loopback TCP, each owning a subset of the lab's devices; one
// tracing session spans both through a transport router and runs a
// multi-device workload that lands each device's traffic on its own
// middlebox's trace log.
package main

import (
	"fmt"
	"log"

	"rad"
	"rad/internal/device"
	"rad/internal/device/c9"
	"rad/internal/device/ika"
	"rad/internal/device/quantos"
	"rad/internal/device/tecan"
	"rad/internal/device/ur3e"
)

func main() {
	clock := rad.RealClock{}

	// Middlebox A owns the robot side: C9 and UR3e.
	sinkA := rad.NewTraceStore()
	coreA := rad.NewMiddlebox(clock, sinkA)
	coreA.Register(c9.New(device.NewEnv(clock, 1)))
	coreA.Register(ur3e.New(device.NewEnv(clock, 2), nil))
	srvA := rad.NewMiddleboxServer(coreA, rad.NetworkProfile{}, 1)
	addrA, err := srvA.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srvA.Close()

	// Middlebox B owns the chemistry side: IKA, Tecan, Quantos.
	sinkB := rad.NewTraceStore()
	coreB := rad.NewMiddlebox(clock, sinkB)
	coreB.Register(ika.New(device.NewEnv(clock, 3)))
	coreB.Register(tecan.New(device.NewEnv(clock, 4)))
	coreB.Register(quantos.New(device.NewEnv(clock, 5)))
	srvB := rad.NewMiddleboxServer(coreB, rad.NetworkProfile{}, 2)
	addrB, err := srvB.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srvB.Close()

	fmt.Printf("middlebox A (robots)    on %s\n", addrA)
	fmt.Printf("middlebox B (chemistry) on %s\n\n", addrB)

	// The lab computer routes per device.
	tA, err := rad.DialMiddlebox(addrA)
	if err != nil {
		log.Fatal(err)
	}
	tB, err := rad.DialMiddlebox(addrB)
	if err != nil {
		log.Fatal(err)
	}
	router := rad.NewTransportRouter(tA)
	router.Route(rad.DeviceC9, tA)
	router.Route(rad.DeviceUR3e, tA)
	router.Route(rad.DeviceIKA, tB)
	router.Route(rad.DeviceTecan, tB)
	router.Route(rad.DeviceQuantos, tB)

	sess := rad.NewTracingSession(router, clock, rad.TracingConfig{
		DefaultMode: rad.ModeRemote, Procedure: "P1", Run: "distributed-demo",
	})
	defer sess.Close()

	// A small cross-middlebox workload: init everything, move the arm, poll
	// the stirrer, dispense with the pump.
	steps := []rad.Command{
		{Device: rad.DeviceC9, Name: "__init__"},
		{Device: rad.DeviceIKA, Name: "__init__"},
		{Device: rad.DeviceTecan, Name: "__init__"},
		{Device: rad.DeviceC9, Name: "ARM", Args: []string{"120", "40", "10"}},
		{Device: rad.DeviceC9, Name: "MVNG"},
		{Device: rad.DeviceIKA, Name: "OUT_SP_4", Args: []string{"300"}},
		{Device: rad.DeviceIKA, Name: "START_4"},
		{Device: rad.DeviceTecan, Name: "V", Args: []string{"1200"}},
		{Device: rad.DeviceTecan, Name: "A", Args: []string{"1500"}},
		{Device: rad.DeviceTecan, Name: "Q"},
		{Device: rad.DeviceIKA, Name: "IN_PV_4"},
		{Device: rad.DeviceC9, Name: "MVNG"},
	}
	for _, cmd := range steps {
		dev, err := sess.Virtual(cmd.Device)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := dev.Exec(cmd); err != nil {
			log.Fatalf("%s: %v", cmd.Name, err)
		}
	}

	fmt.Printf("workload of %d commands traced across two middleboxes:\n\n", len(steps))
	fmt.Printf("middlebox A logged %d records:\n", sinkA.Len())
	for dev, n := range sinkA.CountByDevice() {
		fmt.Printf("  %-8s %d\n", dev, n)
	}
	fmt.Printf("middlebox B logged %d records:\n", sinkB.Len())
	for dev, n := range sinkB.CountByDevice() {
		fmt.Printf("  %-8s %d\n", dev, n)
	}

	// Both logs carry the same run label, so downstream analyses can merge
	// the shards back into one trace.
	merged := append(sinkA.ByRun("distributed-demo"), sinkB.ByRun("distributed-demo")...)
	fmt.Printf("\nmerged run trace: %d records — sharding is invisible to the analyses\n", len(merged))
}
