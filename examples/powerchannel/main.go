// Power side channel: reproduce §VI's RQ3 end to end. Record the UR3e's
// joint-1 current while it performs known motions, teach the signatures to
// the power detector, then show that the detector (i) recognizes a repeat of
// a known motion, (ii) flags an unexpected payload (Fig. 7d's effect), and
// (iii) flags an unknown trajectory — all without touching the command
// stream, which is the point of the side channel.
package main

import (
	"fmt"
	"log"

	"rad"
)

func main() {
	det := rad.NewPowerDetector()

	// Phase 1 — enrolment: run each reference motion and learn its
	// signature. (In the lab this is a power probe at the outlet; here it is
	// the simulated RTDE feed.)
	fmt.Println("enrolling reference motions:")
	for _, loc := range []string{"L1", "L2", "L3"} {
		cur := record(1, func(lab *rad.VirtualLab, arm rad.Device) {
			move(arm, "L0", 0)
			lab.Lab.Monitor.Reset()
			move(arm, loc, 0)
		})
		det.Learn("L0->"+loc, cur)
		fmt.Printf("  L0->%s: %d samples, peak %.3f\n", loc, len(cur), peak(cur))
	}

	// Phase 2 — a repeat of a known motion on a different day (fresh noise).
	cur := record(99, func(lab *rad.VirtualLab, arm rad.Device) {
		move(arm, "L0", 0)
		lab.Lab.Monitor.Reset()
		move(arm, "L2", 0)
	})
	report(det, "repeat of L0->L2", cur)

	// Phase 3 — the same motion but secretly carrying a 1 kg payload: the
	// trajectory matches, the amplitude does not. A command-based IDS cannot
	// see this (weights are not command arguments, §VI).
	cur = record(100, func(lab *rad.VirtualLab, arm rad.Device) {
		move(arm, "storage_rack", 0)
		lab.Lab.RawUR3e.SetNextPayload(1.0)
		grip(arm, "close_gripper")
		move(arm, "L0", 0)
		lab.Lab.Monitor.Reset()
		move(arm, "L2", 0)
	})
	report(det, "L0->L2 with hidden 1 kg payload", cur)

	// Phase 4 — an attacker drives the arm somewhere it never goes.
	cur = record(101, func(lab *rad.VirtualLab, arm rad.Device) {
		move(arm, "L0", 0)
		lab.Lab.Monitor.Reset()
		move(arm, "camera_station", 0)
		move(arm, "quantos_tray", 0)
	})
	report(det, "unknown trajectory (L0->camera->quantos)", cur)
}

// record runs fn in a fresh power-enabled lab and returns the joint-1
// current recorded after the last Monitor.Reset inside fn.
func record(seed uint64, fn func(*rad.VirtualLab, rad.Device)) []float64 {
	lab, err := rad.NewVirtualLab(rad.VirtualLabConfig{Seed: seed, WithPower: true})
	if err != nil {
		log.Fatal(err)
	}
	defer lab.Close()
	arm := lab.Lab.UR3e
	if _, err := arm.Exec(rad.Command{Name: "__init__"}); err != nil {
		log.Fatal(err)
	}
	fn(lab, arm)
	return rad.CurrentSeries(lab.Lab.Monitor.Samples(), 0)
}

func move(arm rad.Device, loc string, vel float64) {
	args := []string{loc}
	if vel > 0 {
		args = append(args, fmt.Sprintf("%g", vel))
	}
	if _, err := arm.Exec(rad.Command{Name: "move_to_location", Args: args}); err != nil {
		log.Fatal(err)
	}
}

func grip(arm rad.Device, name string) {
	if _, err := arm.Exec(rad.Command{Name: name}); err != nil {
		log.Fatal(err)
	}
}

func report(det *rad.PowerDetector, what string, cur []float64) {
	m, err := det.Classify(cur)
	if err != nil {
		log.Fatal(err)
	}
	verdict := "ok"
	if m.Anomalous {
		verdict = "ANOMALOUS — " + m.Reason
	}
	fmt.Printf("\n%s:\n  best match %q (r=%.3f, amplitude ratio %.2f): %s\n",
		what, m.Label, m.Correlation, m.AmplitudeRatio, verdict)
}

func peak(xs []float64) float64 {
	best := 0.0
	for _, x := range xs {
		if x < 0 {
			x = -x
		}
		if x > best {
			best = x
		}
	}
	return best
}
