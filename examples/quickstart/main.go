// Quickstart: assemble a virtual Hein Lab, run one traced procedure through
// the middlebox, and inspect the resulting trace — the five-minute tour of
// the RATracer pipeline (Fig. 1).
package main

import (
	"fmt"
	"log"

	"rad"
)

func main() {
	// A VirtualLab is a complete in-process deployment: the five simulated
	// devices (C9, UR3e, IKA, Tecan, Quantos) registered on a trusted
	// middlebox, a REMOTE-mode tracing session, and a virtual clock so a
	// multi-hour chemistry screen runs in milliseconds.
	lab, err := rad.NewVirtualLab(rad.VirtualLabConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	defer lab.Close()
	started := lab.Clock.Now()

	// Run one of the paper's workloads: the P1 automated solubility screen
	// (N9 arm + Quantos dosing + Tecan solvent + IKA stirring).
	res := rad.RunSolubilityN9(lab.Lab, rad.ProcedureOptions{
		Run:   "demo-run",
		Solid: "CSTI",
		Vials: 2,
	})
	if res.Err != nil {
		log.Fatalf("procedure failed: %v", res.Err)
	}
	fmt.Printf("procedure %s finished: %d commands over %s of simulated lab time\n\n",
		res.Procedure, res.Commands, lab.Clock.Now().Sub(started).Round(1e9))

	// Every device access was intercepted and logged by the middlebox.
	records := lab.Sink.ByRun("demo-run")
	fmt.Printf("middlebox logged %d trace records; the first five:\n", len(records))
	for _, r := range records[:5] {
		fmt.Printf("  %s  %-28s -> %q (%.1f ms)\n",
			r.Time.Format("15:04:05.000"), r.Key(), r.Response,
			float64(r.Latency().Microseconds())/1000)
	}

	// The trace is a language: count the per-device commands the way the
	// dataset's Fig. 5(a) does.
	fmt.Println("\ncommands per device:")
	for dev, n := range lab.Sink.CountByDevice() {
		fmt.Printf("  %-8s %4d\n", dev, n)
	}

	// And the top bigrams of this single run.
	seq := lab.Sink.CommandSequence(nil)
	fmt.Println("\ntop command bigrams of the run:")
	for _, c := range rad.TopNGrams([][]string{seq}, 2, 5) {
		fmt.Printf("  %-24s %4d\n", c.Key(), c.Times)
	}
}
