// Specification mining: §V's second teased use case — "deriving a high-level
// program specification from low-level commands" — end to end. Run the
// crystal-solubility screen three times with different loop counts, mine
// each trace's loop structure, merge the per-run specifications into one
// with widened repetition bounds, and print the recovered pseudocode next
// to the procedure's actual shape.
package main

import (
	"fmt"
	"log"

	"rad"
)

func main() {
	// Trace three P3 runs with different vial counts (the real screens vary
	// per solid and sample set).
	var specs []rad.Spec
	var seqs [][]string
	for i, vials := range []int{2, 3, 4} {
		lab, err := rad.NewVirtualLab(rad.VirtualLabConfig{Seed: uint64(50 + i)})
		if err != nil {
			log.Fatal(err)
		}
		res := rad.RunCrystalSolubility(lab.Lab, rad.ProcedureOptions{
			Run: "mine", Seed: 333, Vials: vials, // same per-run seed: same structure
		})
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		seq := lab.Sink.CommandSequence(nil)
		seqs = append(seqs, seq)
		specs = append(specs, rad.MineSpec(seq, rad.SpecOptions{}))
		fmt.Printf("run %d: %d vials, %d commands, spec of %d elements, loop coverage %.0f%%\n",
			i, vials, len(seq), len(specs[i]), rad.SpecCoverage(seq, specs[i])*100)
		_ = lab.Close()
	}

	// The corpus-level building blocks: the repeated blocks that cover the
	// most commands across the runs.
	fmt.Println("\nmost-covering repeated blocks across the runs:")
	for _, b := range rad.TopSpecBlocks(seqs, rad.SpecOptions{}, 5) {
		fmt.Printf("  ×%-4d { %s }\n", b.Min, join(b.Block))
	}

	// Merging identical-structure runs widens the loop bounds into ranges;
	// runs with different vial counts differ structurally (the vial loop
	// repeats a different number of times), which Merge reports honestly.
	if merged, ok := rad.MergeSpecs(specs); ok {
		fmt.Println("\nmerged specification:")
		fmt.Println(merged.String())
	} else {
		fmt.Println("\nruns differ structurally (different vial counts); first run's spec:")
		fmt.Println(specs[0].String())
	}
}

func join(xs []string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += " "
		}
		out += x
	}
	return out
}
