// Solubility + online IDS: run the paper's P2 workflow (automated solubility
// with N9 and UR3e) with the streaming perplexity detector watching the
// middlebox's command stream, then replay the same screen with an injected
// Quantos-door crash and watch the detector fire mid-run — the §V-B
// technique "adapted to real time detection".
package main

import (
	"fmt"
	"log"

	"rad"
)

func main() {
	// Phase 1 — collect training data: benign P2 runs in a virtual lab.
	train, err := rad.NewVirtualLab(rad.VirtualLabConfig{Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	defer train.Close()

	solids := []string{"NABH4", "CSTI", "GENTISTIC"}
	var trainingSeqs [][]string
	for i := 0; i < 9; i++ {
		solid := solids[i%len(solids)]
		run := fmt.Sprintf("train-%d", i)
		res := rad.RunSolubilityN9UR(train.Lab, rad.ProcedureOptions{
			Run: run, Solid: solid, Seed: uint64(100 + i), Vials: 1 + i%3,
		})
		if res.Err != nil {
			log.Fatalf("training run: %v", res.Err)
		}
		seq := train.Sink.CommandSequence(func(r rad.TraceRecord) bool { return r.Run == run })
		trainingSeqs = append(trainingSeqs, seq)
		fmt.Printf("training run %s (%s, %d vials): %d commands\n", run, solid, 1+i%3, len(seq))
	}

	det, err := rad.TrainPerplexityDetector(trainingSeqs, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrained trigram detector, threshold %.3f\n", det.Threshold())

	// Phase 2 — a benign screen with the detector online.
	fmt.Println("\n--- benign P2 screen ---")
	replay(det, 31, nil)

	// Phase 3 — the same screen, but the Quantos front door crashes into
	// the UR3e partway through (the scenario of RAD's run 17).
	fmt.Println("\n--- P2 screen with injected Quantos-door crash ---")
	replay(det, 31, &rad.CrashPlan{
		Device:        rad.DeviceQuantos,
		Reason:        "front door crashed into UR3e",
		AfterCommands: 40,
	})
}

// replay runs one P2 screen and feeds its trace through a fresh stream.
func replay(det *rad.PerplexityDetector, seed uint64, crash *rad.CrashPlan) {
	lab, err := rad.NewVirtualLab(rad.VirtualLabConfig{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	defer lab.Close()

	res := rad.RunSolubilityN9UR(lab.Lab, rad.ProcedureOptions{
		Run: "live", Solid: "NABH4", Seed: 555, Crash: crash,
	})
	status := "completed"
	if res.Anomalous {
		status = fmt.Sprintf("CRASHED (%v)", res.Err)
	}
	fmt.Printf("screen %s after %d commands\n", status, res.Commands)

	stream := det.NewStream(32)
	seq := lab.Sink.CommandSequence(func(r rad.TraceRecord) bool { return r.Run == "live" })
	for pos, cmd := range seq {
		score, alert := stream.Observe(cmd)
		if alert {
			fmt.Printf("IDS ALERT at command %d/%d (%s), window perplexity %.2f\n",
				pos+1, len(seq), cmd, score)
			// Explain the alert: the transitions the model found least
			// likely inside the alerting window.
			for _, tr := range det.MostSurprising(stream.Window(), 3) {
				fmt.Printf("  surprising: %s\n", tr)
			}
			return
		}
	}
	fmt.Println("IDS: no alert over the whole run")
}
