package rad_test

// Query parity between the two trace stores: a campaign ingested into both
// the in-memory MemStore and the persistent tracedb must answer every
// supported query shape identically. MemStore is the reference semantics
// (brute-force filter over insertion order); tracedb answers the same
// queries from its on-disk segments and indexes.

import (
	"reflect"
	"testing"

	"rad"
)

func sameTraceRecords(t *testing.T, shape string, got, want []rad.TraceRecord) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d records, want %d", shape, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Seq != w.Seq ||
			g.Time.UnixNano() != w.Time.UnixNano() ||
			g.EndTime.UnixNano() != w.EndTime.UnixNano() ||
			g.Device != w.Device || g.Name != w.Name ||
			!reflect.DeepEqual(g.Args, w.Args) ||
			g.Response != w.Response || g.Exception != w.Exception ||
			g.Procedure != w.Procedure || g.Run != w.Run || g.Mode != w.Mode {
			t.Fatalf("%s: record %d mismatch:\n got  %+v\n want %+v", shape, i, g, w)
		}
	}
}

func TestTraceDBQueryParityWithMemStore(t *testing.T) {
	ds, err := rad.GenerateDataset(rad.GenerateConfig{Seed: 11, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	mem := ds.Store
	recs := mem.All()

	db, err := rad.OpenTraceDB(t.TempDir(), rad.TraceDBOptions{SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Ingest through the Batcher flush boundary, as the middlebox would.
	b := rad.NewTraceBatcher(db, 512)
	for _, r := range recs {
		if err := b.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if db.Len() != mem.Len() {
		t.Fatalf("tracedb has %d records, memstore %d", db.Len(), mem.Len())
	}

	// Every supported query shape, including combinations.
	n := len(recs)
	shapes := map[string]rad.TraceQuery{
		"full-scan":        {},
		"per-device":       {Device: rad.DeviceC9},
		"per-device-rare":  {Device: rad.DeviceQuantos},
		"per-command-type": {Key: "Tecan.Q"},
		"per-command-rare": {Key: "Quantos.start_dosing"},
		"per-procedure":    {Procedure: rad.ProcedureP2},
		"unknown-proc":     {Procedure: rad.UnknownProcedure},
		"time-range":       {From: recs[n/3].Time, To: recs[2*n/3].Time},
		"time-open-start":  {To: recs[n/4].Time},
		"time-open-end":    {From: recs[3*n/4].Time},
		"combined":         {From: recs[n/5].Time, To: recs[4*n/5].Time, Device: rad.DeviceC9},
		"no-match":         {Device: "Krios"},
	}
	for _, run := range mem.Runs() {
		shapes["per-run-"+run] = rad.TraceQuery{Run: run}
	}

	for shape, q := range shapes {
		want := mem.Filter(q.Match)
		got, err := db.Collect(q)
		if err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		sameTraceRecords(t, shape, got, want)

		// The iterator must yield the same sequence as Collect.
		var scanned []rad.TraceRecord
		it := db.Scan(q)
		for it.Next() {
			scanned = append(scanned, it.Record())
		}
		if it.Err() != nil {
			t.Fatalf("%s: scan: %v", shape, it.Err())
		}
		sameTraceRecords(t, shape+"/scan", scanned, want)
	}

	// Aggregates answered from the index match the reference store.
	if got, want := db.CountByCommand(), mem.CountByCommand(); !reflect.DeepEqual(got, want) {
		t.Errorf("CountByCommand diverges: %v vs %v", got, want)
	}
	if got, want := db.CountByDevice(), mem.CountByDevice(); !reflect.DeepEqual(got, want) {
		t.Errorf("CountByDevice diverges: %v vs %v", got, want)
	}
	if got, want := db.Runs(), mem.Runs(); !reflect.DeepEqual(got, want) {
		t.Errorf("Runs diverges: %v vs %v", got, want)
	}
}
