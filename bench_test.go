package rad_test

// One benchmark per table and figure in the paper's evaluation (§III–§VI),
// plus ablation benchmarks for the design choices DESIGN.md calls out
// (wire framing, n-gram order, transport). Run:
//
//	go test -bench=. -benchmem
//
// The figure/table benchmarks exercise the same harnesses cmd/radbench uses
// to regenerate the paper's results; the dataset-bound ones share one
// generated campaign per process.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"rad"
	"rad/internal/wire"
)

var (
	benchOnce sync.Once
	benchDS   *rad.Dataset
	benchErr  error
)

func benchDataset(b *testing.B) *rad.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		benchDS, benchErr = rad.GenerateDataset(rad.GenerateConfig{Seed: 11, Scale: 0.2})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchDS
}

// BenchmarkFig4ResponseTime measures the Fig. 4 experiment: N9 ARM response
// time through a live loopback middlebox per deployment mode.
func BenchmarkFig4ResponseTime(b *testing.B) {
	for _, mode := range []string{"DIRECT", "REMOTE", "CLOUD"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := rad.Fig4ResponseTime(rad.Fig4Config{
					Sequences: 1, CommandsPerSequence: 5, Seed: 1, Modes: []string{mode},
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Modes) != 1 {
					b.Fatal("missing mode result")
				}
			}
		})
	}
}

// BenchmarkFig5aCommandDistribution regenerates the command-wise
// distribution of trace objects.
func BenchmarkFig5aCommandDistribution(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := rad.Fig5aCommandDistribution(ds)
		if len(res.Commands) != 52 {
			b.Fatal("bad distribution")
		}
	}
}

// BenchmarkFig5bTopNGrams regenerates the top-10 n-gram lists for n=2..5.
func BenchmarkFig5bTopNGrams(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := rad.Fig5bTopNGrams(ds, nil, 10)
		if len(tables) != 4 {
			b.Fatal("bad tables")
		}
	}
}

// BenchmarkFig6SimilarityMatrix regenerates the 25×25 TF-IDF similarity
// matrix over the supervised runs.
func BenchmarkFig6SimilarityMatrix(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := rad.Fig6SimilarityMatrix(ds)
		if len(res.Matrix) != 25 {
			b.Fatal("bad matrix")
		}
	}
}

// BenchmarkTableIPerplexityIDS regenerates Table I: 5-fold CV, three model
// orders, Jenks classification.
func BenchmarkTableIPerplexityIDS(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := rad.TableIPerplexityIDS(ds, rad.TableIConfig{})
		if len(rows) != 3 {
			b.Fatal("bad rows")
		}
	}
}

// BenchmarkFig7 regenerates the four §VI power-trace experiments.
func BenchmarkFig7(b *testing.B) {
	b.Run("a_segments", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rad.Fig7aSegments(3); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("b_solids", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rad.Fig7bSolids(3); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("c_velocities", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rad.Fig7cVelocities(3); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("d_weights", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rad.Fig7dWeights(3); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDatasetGeneration measures campaign synthesis throughput
// (commands traced end-to-end through the middlebox per second).
func BenchmarkDatasetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds, err := rad.GenerateDataset(rad.GenerateConfig{Seed: uint64(i) + 1, Scale: 0.05})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(ds.Store.Len()), "commands/op")
	}
}

// BenchmarkGenerateParallel measures sharded campaign synthesis across
// worker counts. The canonical merge ordering makes every variant produce
// identical bytes, so the sub-benchmarks differ only in wall clock:
//
//	go test -bench=BenchmarkGenerateParallel -benchmem
func BenchmarkGenerateParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ds, err := rad.GenerateDataset(rad.GenerateConfig{
					Seed: 11, Scale: 0.05, Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(ds.Store.Len()), "commands/op")
			}
		})
	}
}

// BenchmarkNGramCountParallel measures the Fig. 5(b) counting kernel across
// worker counts on the shared benchmark corpus.
func BenchmarkNGramCountParallel(b *testing.B) {
	ds := benchDataset(b)
	seq := ds.AllSequence()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				top := rad.TopNGramsParallel([][]string{seq}, 3, 10, workers)
				if len(top) != 10 {
					b.Fatal("bad top-k")
				}
			}
		})
	}
}

// --- Ablation benchmarks (design choices from DESIGN.md) ---

// BenchmarkAblationWireFraming measures the JSON length-prefixed framing
// cost per command round trip payload.
func BenchmarkAblationWireFraming(b *testing.B) {
	req := wire.Request{
		ID: 42, Op: wire.OpExec, Device: "C9", Name: "ARM",
		Args: []string{"120.5", "-30.25", "12"}, Procedure: "P2", Run: "run-19",
	}
	b.Run("encode", func(b *testing.B) {
		var buf bytes.Buffer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := wire.WriteFrame(&buf, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("roundtrip", func(b *testing.B) {
		var buf bytes.Buffer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := wire.WriteFrame(&buf, req); err != nil {
				b.Fatal(err)
			}
			var got wire.Request
			if err := wire.ReadFrame(&buf, &got); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationNGramOrder measures perplexity scoring cost by model
// order, the knob Table I sweeps.
func BenchmarkAblationNGramOrder(b *testing.B) {
	ds := benchDataset(b)
	seqs, _ := dsSequences(ds)
	for _, n := range []int{2, 3, 4} {
		b.Run([]string{"", "", "bigram", "trigram", "fourgram"}[n], func(b *testing.B) {
			model := rad.TrainNGram(seqs[:20], n, 0.1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, seq := range seqs[20:] {
					_ = model.Perplexity(seq)
				}
			}
		})
	}
}

func dsSequences(ds *rad.Dataset) ([][]string, []bool) {
	return ds.SupervisedSequences()
}

// BenchmarkAblationTransport compares the in-process transport against real
// TCP for one command round trip — the deployment choice between virtual
// campaign generation and the live middlebox.
func BenchmarkAblationTransport(b *testing.B) {
	b.Run("local", func(b *testing.B) {
		vl, err := rad.NewVirtualLab(rad.VirtualLabConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		defer vl.Close()
		dev := vl.Lab.C9
		if _, err := dev.Exec(rad.Command{Name: "__init__"}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := dev.Exec(rad.Command{Name: "MVNG"}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tcp", func(b *testing.B) {
		clock := rad.RealClock{}
		lab, err := rad.NewVirtualLab(rad.VirtualLabConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		defer lab.Close()
		// Serve the virtual lab's core over real TCP with no emulated delay.
		srv := rad.NewMiddleboxServer(lab.Core, rad.NetworkProfile{}, 1)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		transport, err := rad.DialMiddlebox(addr)
		if err != nil {
			b.Fatal(err)
		}
		sess := rad.NewTracingSession(transport, clock, rad.TracingConfig{DefaultMode: rad.ModeRemote})
		defer sess.Close()
		dev, err := sess.Virtual(rad.DeviceC9)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dev.Exec(rad.Command{Name: "__init__"}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := dev.Exec(rad.Command{Name: "MVNG"}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStreamingIDS measures the per-command cost of the real-time
// perplexity detector — the latency budget an online deployment would add
// to every middlebox command.
func BenchmarkStreamingIDS(b *testing.B) {
	ds := benchDataset(b)
	seqs, anomalous := ds.SupervisedSequences()
	var benign [][]string
	for i, seq := range seqs {
		if !anomalous[i] {
			benign = append(benign, seq)
		}
	}
	det, err := rad.TrainPerplexityDetector(benign, 3)
	if err != nil {
		b.Fatal(err)
	}
	stream := det.NewStream(32)
	cmds := seqs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream.Observe(cmds[i%len(cmds)])
	}
}

// BenchmarkPowerModel measures the current-model evaluation rate (samples
// per second the simulated RTDE feed can sustain).
func BenchmarkPowerModel(b *testing.B) {
	vl, err := rad.NewVirtualLab(rad.VirtualLabConfig{Seed: 1, WithPower: true})
	if err != nil {
		b.Fatal(err)
	}
	defer vl.Close()
	arm := vl.Lab.UR3e
	if _, err := arm.Exec(rad.Command{Name: "__init__"}); err != nil {
		b.Fatal(err)
	}
	locs := []string{"L0", "L1"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arm.Exec(rad.Command{Name: "move_to_location", Args: []string{locs[i%2]}}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(vl.Lab.Monitor.Len())/float64(b.N), "samples/op")
	_ = time.Now
}
