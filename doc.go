// Package rad is a from-scratch Go reproduction of "Arming IDS Researchers
// with a Robotic Arm Dataset" (DSN 2022): the RATracer tracing framework,
// the Robotic Arm Dataset (RAD), and the paper's command-stream and
// power-side-channel analyses — together with simulators for every piece of
// hardware the paper's physical deployment relied on.
//
// The package is a facade over the repository's internal packages. It
// exposes four capability groups:
//
//   - Tracing: a trusted middlebox (NewMiddlebox/StartMiddleboxServer), the
//     lab-computer tracing session (NewTracingSession, DialMiddlebox), and
//     the DIRECT/REMOTE interception modes of §III.
//   - The lab: NewVirtualLab assembles the five simulated Hein Lab devices
//     (C9, UR3e, IKA, Tecan, Quantos) behind a middlebox under a virtual
//     clock, and the procedure runners (RunJoystick, RunSolubilityN9,
//     RunSolubilityN9UR, RunCrystalSolubility, RunVelocityTest,
//     RunWeightTest) execute the paper's workloads P1–P6 against it.
//   - The dataset: GenerateDataset synthesizes the full three-month campaign
//     — 128,785 command trace objects over 52 command types, 25 supervised
//     runs with 3 crash anomalies, and UR3e power telemetry.
//   - Analysis & IDS: n-gram models, TF-IDF similarity, perplexity + Jenks
//     anomaly classification, a streaming command IDS, a rule engine, and a
//     power-signature detector.
//
// The internal/experiments package (surfaced through the Fig4…TableI
// functions here and the cmd/radbench binary) regenerates every table and
// figure in the paper's evaluation. See DESIGN.md for the system inventory
// and EXPERIMENTS.md for paper-vs-measured results.
package rad
