package rad

import (
	"rad/internal/analysis/jenks"
	"rad/internal/analysis/metrics"
	"rad/internal/analysis/ngram"
	"rad/internal/analysis/specmine"
	"rad/internal/analysis/stats"
	"rad/internal/analysis/tfidf"
	"rad/internal/attack"
	"rad/internal/device"
	"rad/internal/experiments"
	"rad/internal/fault"
	"rad/internal/fleet"
	"rad/internal/ids"
	"rad/internal/middlebox"
	"rad/internal/obs"
	"rad/internal/obs/span"
	"rad/internal/parallel"
	"rad/internal/power"
	"rad/internal/procedure"
	dataset "rad/internal/rad"
	"rad/internal/simclock"
	"rad/internal/store"
	"rad/internal/stream"
	"rad/internal/tracedb"
	"rad/internal/tracer"
	"rad/internal/wire"
)

// --- Devices and commands ---

// Device is the interface implemented by every simulated CPS device and by
// the virtualized proxies a tracing session hands out.
type Device = device.Device

// Command is a single device access crossing the data-collection boundary.
type Command = device.Command

// CommandSpec describes one of the 52 command types in the dataset catalog.
type CommandSpec = device.CommandSpec

// Device names as they appear in the dataset.
const (
	DeviceC9      = device.C9
	DeviceUR3e    = device.UR3e
	DeviceIKA     = device.IKA
	DeviceTecan   = device.Tecan
	DeviceQuantos = device.Quantos
)

// CommandCatalog returns the 52-command catalog of Fig. 5(a).
func CommandCatalog() []CommandSpec { return device.Catalog() }

// --- Clocks ---

// Clock abstracts time so the same code runs in real time (latency
// experiments) and virtual time (dataset generation).
type Clock = simclock.Clock

// RealClock is the wall clock.
type RealClock = simclock.Real

// VirtualClock is a deterministic clock that advances only on Sleep/Advance.
type VirtualClock = simclock.Virtual

// NewVirtualClock returns a virtual clock starting at the given instant.
var NewVirtualClock = simclock.NewVirtual

// --- Middlebox and tracing (RATracer) ---

// Middlebox is the trusted middlebox core of Fig. 1: device registry,
// command execution, and trace logging.
type Middlebox = middlebox.Core

// MiddleboxServer serves a Middlebox over TCP.
type MiddleboxServer = middlebox.Server

// NetworkProfile emulates the lab network (LANProfile) or a cloud WAN
// (CloudProfile) between the lab computer and the middlebox.
type NetworkProfile = middlebox.NetworkProfile

// NewMiddlebox builds a middlebox logging to sink (which may be nil).
func NewMiddlebox(clock Clock, sink TraceSink) *Middlebox {
	return middlebox.NewCore(clock, sink)
}

// NewMiddleboxServer wraps a middlebox core for TCP serving with an emulated
// network profile.
var NewMiddleboxServer = middlebox.NewServer

// MiddleboxHandler answers wire requests; both a single-tenant Middlebox and
// a FleetRouter implement it, so one TCP server serves either.
type MiddleboxHandler = middlebox.Handler

// NewMiddleboxHandlerServer is NewMiddleboxServer for any MiddleboxHandler
// (a fleet router, a test fake) instead of a concrete core.
var NewMiddleboxHandlerServer = middlebox.NewHandlerServer

// LANProfile models the lab's switched Ethernet; CloudProfile models the
// Azure WAN replay of Fig. 4's footnote.
var (
	LANProfile   = middlebox.LANProfile
	CloudProfile = middlebox.CloudProfile
)

// --- Fault injection and resilience (internal/fault) ---

// FaultProfile configures the deterministic fault injectors: per-class
// probabilities for latency spikes, dropped/garbled responses, device
// hangs, wire resets, and sink write errors.
type FaultProfile = fault.Profile

// ParseFaultProfile parses "none", "flaky", or "chaos", optionally with
// key=value overrides (e.g. "flaky,hang=0.01,hangfor=30s").
var ParseFaultProfile = fault.ParseProfile

// FlakyFaults and ChaosFaults are the built-in fault profiles; NoFaults is
// the transparent one.
var (
	NoFaults    = fault.None
	FlakyFaults = fault.Flaky
	ChaosFaults = fault.Chaos
)

// FaultyDevice and FlakySink wrap a device / trace sink with seeded,
// reproducible fault injection.
type (
	FaultyDevice = fault.FaultyDevice
	FlakySink    = fault.FlakySink
)

// WrapFaultyDevice and WrapFlakySink build the injectors.
var (
	WrapFaultyDevice = fault.WrapDevice
	WrapFlakySink    = fault.WrapSink
)

// ExecPolicy hardens the middlebox REMOTE exec path: per-attempt
// deadlines, jittered-backoff retries for idempotent commands, and
// per-device circuit breakers. The zero value keeps the seed-exact
// single-attempt path.
type ExecPolicy = middlebox.ExecPolicy

// BreakerConfig tunes a per-device circuit breaker; Resilience and
// BreakerStats surface the hardened path's activity in Middlebox.Snapshot.
type (
	BreakerConfig = fault.BreakerConfig
	Resilience    = middlebox.Resilience
	BreakerStats  = fault.BreakerStats
)

// IsInfraError reports whether an error is an infrastructure failure
// (injected fault, exec deadline, serial timeout, dead link) rather than a
// device-reported command error.
var IsInfraError = fault.IsInfra

// DeadLetterQueue is the disk-backed spill area FailoverSink writes
// refused trace batches to; TraceDB.Reingest folds it back in.
type DeadLetterQueue = store.DeadLetterQueue

// OpenDLQ opens (or creates) a dead-letter directory.
var OpenDLQ = store.OpenDLQ

// FailoverSink makes a primary sink lossless under write errors by
// spilling refused records to a DeadLetterQueue.
type FailoverSink = store.FailoverSink

// NewFailoverSink wraps a primary sink with dead-letter failover.
var NewFailoverSink = store.NewFailoverSink

// OpenTenantDLQ opens a tenant's dead-letter directory namespaced under a
// shared root (root/tenants/<id>); ValidTenantID is the path-safe tenant
// alphabet every fleet entry point enforces.
var (
	OpenTenantDLQ = store.OpenTenantDLQ
	ValidTenantID = store.ValidTenantID
)

// --- Fleet mode (internal/fleet) ---

// FleetRouter multiplexes many independent lab middleboxes — each with its
// own devices, policies, breakers, and broker — behind one wire listener,
// resolving each request's tenant ID through a striped-lock table to a
// lazily-instantiated Middlebox.
type FleetRouter = fleet.Router

// FleetConfig parameterizes a router; FleetResources is everything one
// tenant lab owns; FleetTenant is one instantiated lab.
type (
	FleetConfig    = fleet.Config
	FleetResources = fleet.Resources
	FleetTenant    = fleet.Tenant
)

// FleetStats is a point-in-time fleet snapshot; FleetTenantStats is one
// lab's slice of it.
type (
	FleetStats       = fleet.Stats
	FleetTenantStats = fleet.TenantStats
)

// NewFleetRouter builds a fleet router.
var NewFleetRouter = fleet.NewRouter

// FleetDefaultTenant is the lab untagged (pre-fleet) requests reach;
// FleetDefaultMaxTenants bounds lazy tenant instantiation.
const (
	FleetDefaultTenant     = fleet.DefaultTenant
	FleetDefaultMaxTenants = fleet.DefaultMaxTenants
)

// FleetCampaign drives hundreds of concurrent tenant workloads through one
// router, each lab on its own virtual clock with a seed derived purely from
// (campaign seed, tenant ID) — byte-reproducible under any interleaving.
type FleetCampaign = fleet.Campaign

// FleetCampaignConfig parameterizes a campaign; FleetCampaignResult and
// FleetTenantResult are its fleet-wide and per-lab outcomes.
type (
	FleetCampaignConfig = fleet.CampaignConfig
	FleetCampaignResult = fleet.CampaignResult
	FleetTenantResult   = fleet.TenantResult
)

// NewFleetCampaign builds a campaign and its router.
var NewFleetCampaign = fleet.NewCampaign

// FleetTenantID names the i-th campaign lab; FleetTenantSeed derives a
// lab's deterministic seed from the campaign seed and its ID alone.
var (
	FleetTenantID   = fleet.TenantID
	FleetTenantSeed = fleet.TenantSeed
)

// TracingSession is the lab-computer side of RATracer: it hands out
// virtualized devices and owns the middlebox transport.
type TracingSession = tracer.Session

// TracingConfig configures a session: default mode, per-device overrides
// (hybrid configurations), and procedure labels.
type TracingConfig = tracer.Config

// Interception modes (§III).
const (
	ModeDirect = tracer.ModeDirect
	ModeRemote = tracer.ModeRemote
)

// Transport carries requests from the lab computer to the middlebox; custom
// implementations (or wrappers such as the attack Interceptor) plug into a
// session or VirtualLabConfig.WrapTransport.
type Transport = tracer.Transport

// WireRequest and WireReply are the RPC protocol messages a Transport
// carries.
type (
	WireRequest = wire.Request
	WireReply   = wire.Reply
)

// WireProto selects which wire protocol an endpoint speaks: WireProtoAuto
// negotiates per connection (binary v2 preferred, v1 JSON fallback) while
// WireProtoV1 and WireProtoV2 pin one version. WireVersion is the concrete
// version a negotiated connection settled on.
type (
	WireProto   = wire.Proto
	WireVersion = wire.Version
)

// Wire protocol selectors and versions.
const (
	WireProtoAuto = wire.ProtoAuto
	WireProtoV1   = wire.ProtoV1
	WireProtoV2   = wire.ProtoV2
	WireV1        = wire.V1
	WireV2        = wire.V2
)

// ParseWireProto parses a protocol flag value: auto, v1/json, or v2/binary.
var ParseWireProto = wire.ParseProto

// NewWireMetrics registers per-protocol frame counters and codec latency
// histograms in a registry; MiddleboxServer.Observe and StreamServer.Observe
// do this for their own listeners.
var NewWireMetrics = wire.NewMetrics

// NewTracingSession creates a session over a transport.
var NewTracingSession = tracer.NewSession

// DialMiddlebox connects to a middlebox server over TCP speaking v1 JSON.
var DialMiddlebox = tracer.DialTCP

// DialMiddleboxProto is DialMiddlebox with an explicit protocol selector.
var DialMiddleboxProto = tracer.DialTCPProto

// NewLocalTransport builds an in-process transport to a middlebox core,
// charging an emulated network profile to the injected clock.
var NewLocalTransport = tracer.NewLocalTransport

// --- Trace storage ---

// TraceRecord is one trace object in the command dataset.
type TraceRecord = store.Record

// TraceSink consumes trace records.
type TraceSink = store.Sink

// TraceNotifier is implemented by sinks that assign sequence numbers and
// expose a commit hook (TraceStore, TraceDB); a Broker attaches to one to
// publish records with their authoritative sequence numbers.
type TraceNotifier = store.Notifier

// TraceStore is the in-memory document store (the MongoDB analog).
type TraceStore = store.MemStore

// NewTraceStore returns an empty in-memory trace store.
var NewTraceStore = store.NewMemStore

// NewCSVWriter and NewJSONLWriter stream trace records to files.
var (
	NewCSVWriter   = store.NewCSVWriter
	NewJSONLWriter = store.NewJSONLWriter
)

// ReadTraceCSV and ReadTraceJSONL parse exported traces back.
var (
	ReadTraceCSV   = store.ReadCSV
	ReadTraceJSONL = store.ReadJSONL
)

// NewTraceBatcher wraps a sink with a flush-bounded staging buffer; each
// flush reaches the sink as one batch (and lands in a TraceDB as one block).
var NewTraceBatcher = store.NewBatcher

// UnknownProcedure labels all unsupervised commands (§IV).
const UnknownProcedure = store.UnknownProcedure

// --- Persistent trace storage (internal/tracedb) ---

// TraceDB is the persistent, indexed, crash-safe embedded trace store — the
// durable stand-in for RATracer's MongoDB instance. It implements TraceSink,
// so the middlebox logs straight to it; reopen the directory to query a
// campaign without regenerating it.
type TraceDB = tracedb.DB

// TraceDBOptions tunes segment rotation and the per-record staging size.
type TraceDBOptions = tracedb.Options

// TraceQuery selects records by time range, device, command type,
// procedure, and run — the analyses' query shapes.
type TraceQuery = tracedb.Query

// TraceIterator streams a TraceDB scan in sequence order.
type TraceIterator = tracedb.Iterator

// OpenTraceDB opens (or creates) a trace store directory, recovering and
// truncating any torn tail left by a crash — including half-finished
// compaction temps and segments superseded by a completed compaction.
var OpenTraceDB = tracedb.Open

// TraceLifecycleOptions configures the store's lifecycle engine: background
// compaction of fragmented segments and whole-segment retention (max age,
// max bytes). Set on TraceDBOptions.Lifecycle.
type TraceLifecycleOptions = tracedb.LifecycleOptions

// TraceCompactStats summarizes a TraceDB.Compact call; TraceRetainStats a
// TraceDB.Retain pass.
type TraceCompactStats = tracedb.CompactStats
type TraceRetainStats = tracedb.RetainStats

// TraceLifecycleInfo is the storage-lifecycle state (live vs reclaimable
// bytes, block-size distribution, retention horizon) behind
// radquery -mode info.
type TraceLifecycleInfo = tracedb.LifecycleInfo

// TraceQueryPlan explains how the selectivity planner would execute a query
// (radquery -explain): driver choices, posting-list sizes, candidate and
// fully-covered block counts.
type TraceQueryPlan = tracedb.QueryPlan

// --- Live streaming and online detection (internal/stream) ---

// Broker is the live fan-out layer: a bounded pub/sub hub publishing every
// committed trace record (and power sample) to per-subscriber ring buffers
// with explicit overflow policies — the serving substrate for researchers
// watching the lab live instead of mining completed campaigns.
type Broker = stream.Broker

// NewBroker returns an empty broker; attach it to a middlebox with
// Middlebox.AttachBroker or to a store with Broker.AttachStore.
var NewBroker = stream.NewBroker

// Subscriber is one consumer's bounded ring; SubOptions configures the
// subscription (name, buffer, policy, filter); SubscriberStats is its
// delivery accounting.
type (
	Subscriber      = stream.Subscriber
	SubOptions      = stream.SubOptions
	SubscriberStats = stream.SubscriberStats
)

// StreamEvent is one published item — a trace record or power sample.
type StreamEvent = stream.Event

// Overflow policies: StreamDropOldest sheds a slow subscriber's oldest
// events (the default — publishers never block); StreamBlock backpressures
// the producer for lossless consumption.
const (
	StreamDropOldest = stream.DropOldest
	StreamBlock      = stream.Block
)

// StreamTail is a snapshot-then-follow subscription: replay the store, then
// the live feed, gap-free and duplicate-free.
type StreamTail = stream.Tail

// StreamServer serves a broker's feed over TCP (the radwatch protocol);
// StreamClient is the consumer side.
type (
	StreamServer = stream.Server
	StreamClient = stream.Client
)

// NewStreamServer wraps a broker (and an optional TraceDB for snapshot
// replays); DialStream connects a client to a stream listener.
var (
	NewStreamServer = stream.NewServer
	DialStream      = stream.Dial
	// DialStreamProto is DialStream with an explicit wire protocol selector.
	DialStreamProto = stream.DialProto
)

// StreamHeartbeat configures the stream server's liveness protocol: v2
// connections are pinged every Interval and reaped when no pong arrives
// within the grace window, so half-open subscribers stop holding rings and
// goroutines. Apply with StreamServer.SetHeartbeat.
type StreamHeartbeat = stream.HeartbeatConfig

// StreamResilientTail is the self-healing consumer: an auto-reconnecting
// tail that tracks the last delivered sequence number, redials with
// jittered exponential backoff (reproducible per seed), renegotiates the
// wire protocol, and resumes from where it left off — exactly-once
// delivery across server restarts.
type (
	StreamResilientTail   = stream.ResilientTail
	StreamResilientConfig = stream.ResilientConfig
	StreamResilientStats  = stream.ResilientStats
)

// NewStreamResilientTail builds an auto-reconnecting tail; the first
// connection is dialed lazily by the first Recv.
var NewStreamResilientTail = stream.NewResilientTail

// StreamSubscribeError is the permanent-refusal error: the server answered
// the subscription with an explicit error event rather than dropping the
// connection, so redialing with the same request cannot help.
type StreamSubscribeError = stream.SubscribeError

// StreamSubscribe is the wire-protocol subscription request a stream client
// sends (filters, snapshot, policy, buffer); StreamWireEvent is the framed
// event the server answers with.
type (
	StreamSubscribe = wire.Subscribe
	StreamWireEvent = wire.Event
)

// Wire-protocol stream event kinds and overflow-policy names.
const (
	StreamEventTrace       = wire.EventTrace
	StreamEventPower       = wire.EventPower
	StreamEventSnapshotEnd = wire.EventSnapshotEnd
	StreamEventError       = wire.EventError
	// StreamEventResumeGap is the degradation notice a resuming subscriber
	// receives when its resume point predates the store's retention floor:
	// Gap records are gone, and a full snapshot of what remains follows.
	StreamEventResumeGap   = wire.EventResumeGap
	StreamPolicyDropOldest = wire.PolicyDropOldest
	StreamPolicyBlock      = wire.PolicyBlock
)

// StreamIDS is the online intrusion detector: a sliding-window streaming
// perplexity scorer plus the rule engine over a live feed, accumulating
// structured StreamAlert records.
type (
	StreamIDS       = stream.IDS
	StreamIDSConfig = stream.IDSConfig
	StreamAlert     = stream.Alert
)

// NewStreamIDS builds an online detector from a trained PerplexityDetector.
var NewStreamIDS = stream.NewIDS

// --- Observability (internal/obs) ---

// MetricsRegistry is the process-wide metrics surface: counters, gauges, and
// latency histograms with a Prometheus text exposition and a JSON snapshot.
// Every layer (middlebox, tracedb, stream, parallel, fault, store) exposes an
// Observe method that registers its instruments into one of these.
type MetricsRegistry = obs.Registry

// Metric instrument and snapshot types, for callers that register their own
// instruments or post-process a snapshot (radwatch's -obs mode does the
// latter).
type (
	MetricCounter      = obs.Counter
	MetricGauge        = obs.Gauge
	LatencyHistogram   = obs.Histogram
	MetricsSnapshot    = obs.Snapshot
	CounterSnapshot    = obs.CounterSnapshot
	GaugeSnapshot      = obs.GaugeSnapshot
	MetricHistSnapshot = obs.HistogramSnapshot
)

// DefaultLatencyBuckets is the shared histogram bucket ladder (1µs–60s),
// tuned so serial exchanges, retries, and whole-procedure timings all land
// in distinct buckets.
var DefaultLatencyBuckets = obs.DefaultLatencyBuckets

// NewMetricsRegistry returns an empty registry; NewMetricsMux wraps one in an
// http.ServeMux serving /metrics (Prometheus text), /snapshot (JSON), and
// net/http/pprof under /debug/pprof/.
var (
	NewMetricsRegistry = obs.NewRegistry
	NewMetricsMux      = obs.ServeMux
)

// ObserveParallel registers the shared worker-pool instruments (kernel calls,
// tasks, active workers) into reg. Package-level: the parallel kernels have
// no object to hang an Observe method on.
var ObserveParallel = parallel.Observe

// RegisterRuntimeMetrics adds Go runtime telemetry (goroutines, heap
// in-use/alloc, GC cycle count and pause p99) to reg as pull-based gauges.
var RegisterRuntimeMetrics = obs.RegisterRuntimeMetrics

// MetricsMuxOptions extends the telemetry mux: a Health callback makes
// /healthz drain-aware (503 once shutdown begins), and a Spans handler
// mounts the flight recorder at /debug/spans.
type MetricsMuxOptions = obs.MuxOptions

// NewMetricsMuxWith is NewMetricsMux plus MetricsMuxOptions.
var NewMetricsMuxWith = obs.ServeMuxWith

// --- Request tracing (internal/obs/span) ---

// SpanRecorder is the process-wide span flight recorder: bounded per-CPU
// ring buffers holding recent request trace trees (client → server.request
// → wire/exec/store/stream children). Always-on and dependency-free; a nil
// recorder is a valid no-op, so untraced deployments pay one pointer check.
type SpanRecorder = span.Recorder

// Span tracing surface: spans and their trace-context pair, recorder
// configuration, assembled trees with filters, recorder accounting, and
// per-tenant rollups.
type (
	Span             = span.Span
	SpanContext      = span.Context
	SpanConfig       = span.Config
	SpanTree         = span.Tree
	SpanTreeJSON     = span.TreeJSON
	SpanPageJSON     = span.PageJSON
	SpanFilter       = span.Filter
	SpanStats        = span.Stats
	SpanTenantRollup = span.TenantRollup
)

// NewSpanRecorder builds a recorder; SpanHandler serves its recent trace
// trees as /debug/spans (JSON and human-readable text, filterable);
// SpanTreesJSON and WriteSpanTrees convert and pretty-print assembled
// trees (radwatch -spans uses both ends of that pair).
var (
	NewSpanRecorder = span.NewRecorder
	SpanHandler     = span.Handler
	SpanTreesJSON   = span.TreesJSON
	WriteSpanTrees  = span.WriteTrees
	SpanFormatID    = span.FormatID
	SpanParseID     = span.ParseID
)

// --- The virtual lab and procedures ---

// Lab bundles the virtualized devices, raw simulators, clock, and session a
// procedure script needs.
type Lab = procedure.Lab

// VirtualLab is a complete in-process deployment: five simulated devices on
// a middlebox under a virtual clock with a REMOTE-mode tracing session.
type VirtualLab = procedure.VirtualLab

// VirtualLabConfig configures NewVirtualLab.
type VirtualLabConfig = procedure.VirtualLabConfig

// NewVirtualLab assembles a virtual lab.
var NewVirtualLab = procedure.NewVirtualLab

// ProcedureOptions tune a procedure run (vials, solid, velocity, payload,
// crash injection, operator quirks).
type ProcedureOptions = procedure.Options

// ProcedureResult summarizes a run.
type ProcedureResult = procedure.Result

// CrashPlan schedules a physical crash partway through a run.
type CrashPlan = procedure.CrashPlan

// Procedure type labels (§IV).
const (
	ProcedureP1       = procedure.P1
	ProcedureP2       = procedure.P2
	ProcedureP3       = procedure.P3
	ProcedureJoystick = procedure.Joystick
	ProcedureP5       = procedure.P5
	ProcedureP6       = procedure.P6
)

// The paper's workloads.
var (
	RunJoystick          = procedure.RunJoystick
	RunSolubilityN9      = procedure.RunSolubilityN9
	RunSolubilityN9UR    = procedure.RunSolubilityN9UR
	RunCrystalSolubility = procedure.RunCrystalSolubility
	RunVelocityTest      = procedure.RunVelocityTest
	RunWeightTest        = procedure.RunWeightTest
)

// --- The dataset ---

// Dataset is the generated Robotic Arm Dataset.
type Dataset = dataset.Dataset

// GenerateConfig configures dataset generation (seed, scale, and worker
// count; the output is byte-identical for every worker count).
type GenerateConfig = dataset.Config

// RunInfo describes one supervised run in Fig. 6 ID order.
type RunInfo = dataset.RunInfo

// GenerateDataset synthesizes the three-month campaign.
var GenerateDataset = dataset.Generate

// DatasetFromRecords rebuilds a Dataset view over exported trace records
// (e.g. read back from radgen's JSONL), re-deriving the run index and
// anomaly ground truth — the generate-once/analyze-many path.
var DatasetFromRecords = dataset.FromRecords

// TotalTraceObjects is the command-dataset size the paper reports.
const TotalTraceObjects = dataset.TotalTraceObjects

// DeviceTargets returns the per-device totals of Fig. 5(a)'s legend.
var DeviceTargets = dataset.DeviceTargets

// --- Power telemetry ---

// PowerSample is one 122-property power-dataset entry.
type PowerSample = power.Sample

// PowerMonitor records UR3e telemetry at 25 Hz.
type PowerMonitor = power.Monitor

// PowerPropertyNames returns the 122 property names of the sample schema.
var PowerPropertyNames = power.PropertyNames

// CurrentSeries extracts one joint's current series from samples.
var CurrentSeries = power.CurrentSeries

// --- Analyses (§V) ---

// NGramModel is a Laplace-smoothed n-gram language model with the §V-B
// perplexity score.
type NGramModel = ngram.Model

// TrainNGram fits an order-n model with the given smoothing constant.
var TrainNGram = ngram.Train

// TopNGrams returns the k most frequent n-grams (Fig. 5b). Counting fans
// out across GOMAXPROCS workers on large corpora; TopNGramsParallel bounds
// the worker count explicitly. Both produce identical output at any worker
// count.
var (
	TopNGrams         = ngram.TopK
	TopNGramsParallel = ngram.TopKParallel
)

// TFIDFVectorizer computes the §V-A fingerprints.
type TFIDFVectorizer = tfidf.Vectorizer

// FitTFIDF fits a vectorizer; CosineSimilarity compares two fingerprints;
// SimilarityMatrix computes all pairwise similarities (Fig. 6) on
// GOMAXPROCS workers; SimilarityMatrixParallel bounds the worker count.
var (
	FitTFIDF                 = tfidf.Fit
	CosineSimilarity         = tfidf.Cosine
	SimilarityMatrix         = tfidf.SimilarityMatrix
	SimilarityMatrixParallel = tfidf.SimilarityMatrixParallel
)

// JenksSplit2 splits scores into two natural classes (§V-B).
var JenksSplit2 = jenks.Split2

// Confusion is a binary confusion matrix with the Table I metrics.
type Confusion = metrics.Confusion

// BoxStats computes Fig. 4-style box-plot statistics; Pearson computes the
// correlation coefficient used in §VI.
var (
	BoxStats = stats.BoxStats
	Pearson  = stats.Pearson
)

// --- IDS prototypes ---

// PerplexityDetector classifies command sequences by n-gram perplexity.
type PerplexityDetector = ids.PerplexityDetector

// TrainPerplexityDetector fits a detector on valid command sequences.
var TrainPerplexityDetector = ids.TrainPerplexity

// ProcedureClassifier identifies procedure types by TF-IDF fingerprint
// (RQ1).
type ProcedureClassifier = ids.ProcedureClassifier

// TrainProcedureClassifier fits the classifier on labelled runs.
var TrainProcedureClassifier = ids.TrainClassifier

// RuleEngine is the middlebox's first-line rule-based safeguard.
type RuleEngine = ids.RuleEngine

// NewRuleEngine builds a rule engine with an optional per-device rate limit.
var NewRuleEngine = ids.NewRuleEngine

// PowerDetector matches joint-current signatures (§VI / RQ3).
type PowerDetector = ids.PowerDetector

// NewPowerDetector creates an empty power-signature detector.
var NewPowerDetector = ids.NewPowerDetector

// --- Experiment harnesses (one per paper table/figure) ---

// Experiment result types.
type (
	Fig4Result   = experiments.Fig4Result
	Fig4Config   = experiments.Fig4Config
	Fig5aResult  = experiments.Fig5aResult
	NGramTable   = experiments.NGramTable
	Fig6Result   = experiments.Fig6Result
	TableIRow    = experiments.TableIRow
	TableIConfig = experiments.TableIConfig
	Fig7aResult  = experiments.Fig7aResult
	Fig7bResult  = experiments.Fig7bResult
	Fig7cResult  = experiments.Fig7cResult
	Fig7dResult  = experiments.Fig7dResult
)

// Experiment harnesses.
var (
	Fig4ResponseTime         = experiments.Fig4ResponseTime
	Fig5aCommandDistribution = experiments.Fig5aCommandDistribution
	Fig5bTopNGrams           = experiments.Fig5bTopNGrams
	Fig6SimilarityMatrix     = experiments.Fig6SimilarityMatrix
	TableIPerplexityIDS      = experiments.TableIPerplexityIDS
	Fig7aSegments            = experiments.Fig7aSegments
	Fig7bSolids              = experiments.Fig7bSolids
	Fig7cVelocities          = experiments.Fig7cVelocities
	Fig7dWeights             = experiments.Fig7dWeights
)

// Series is one labelled joint-current time series at 40 ms ticks.
type Series = experiments.Series

// --- Extensions beyond the paper's tables (its §VII future work) ---

// ArgQuantizer maps numeric command arguments onto training-calibrated
// buckets; ArgAwareDetector is the argument-aware perplexity IDS ("bring
// command arguments into the fold").
type (
	ArgQuantizer     = ids.ArgQuantizer
	ArgAwareDetector = ids.ArgAwareDetector
)

// FitArgQuantizer calibrates a quantizer; TrainArgAwareDetector fits the
// argument-aware perplexity detector.
var (
	FitArgQuantizer       = ids.FitArgQuantizer
	TrainArgAwareDetector = ids.TrainArgAwarePerplexity
)

// AutoLabeler recovers procedure labels for unlabelled trace segments
// ("find ways to automatically generate labels").
type AutoLabeler = ids.AutoLabeler

// NewAutoLabeler builds a labeler from supervised runs; SegmentSessions
// splits a trace stream into sessions at idle gaps.
var (
	NewAutoLabeler  = ids.NewAutoLabeler
	SegmentSessions = ids.SegmentSessions
)

// AttackKind identifies an attack family; AttackConfig parameterizes the
// man-in-the-middle interceptor; AttackScenario and AttackOutcome describe
// benchmark runs ("generate many more anomalous traces … for benchmarking
// other IDS").
type (
	AttackKind     = attack.Kind
	AttackConfig   = attack.Config
	AttackScenario = attack.Scenario
	AttackOutcome  = attack.Outcome
	Interceptor    = attack.Interceptor
)

// Attack families.
const (
	AttackInjection       = attack.Injection
	AttackReplay          = attack.Replay
	AttackSpeedTamper     = attack.SpeedTamper
	AttackParameterTamper = attack.ParameterTamper
	AttackReorder         = attack.Reorder
	AttackDrop            = attack.Drop
)

// NewInterceptor wraps a transport with an attack; RunAttackScenario
// executes one scenario; StandardAttackSuite returns the benchmark set.
var (
	NewInterceptor      = attack.New
	RunAttackScenario   = attack.Run
	StandardAttackSuite = attack.StandardSuite
)

// TransportRouter routes each device's traffic to its own middlebox — the
// distributed deployment §VII anticipates.
type TransportRouter = tracer.Router

// NewTransportRouter creates a router with an optional fallback transport.
var NewTransportRouter = tracer.NewRouter

// AttackBenchRow is one attack-benchmark scenario result.
type AttackBenchRow = experiments.AttackBenchRow

// AttackBenchmark evaluates the name-only and argument-aware detectors
// against the standard attack suite.
var (
	AttackBenchmark   = experiments.AttackBenchmark
	RenderAttackBench = experiments.RenderAttackBench
)

// Ablation studies (smoothing constant, Jenks space, streaming window).
type (
	SmoothingRow  = experiments.SmoothingRow
	JenksSpaceRow = experiments.JenksSpaceRow
	WindowRow     = experiments.WindowRow
)

var (
	AblationSmoothing    = experiments.AblationSmoothing
	AblationJenksSpace   = experiments.AblationJenksSpace
	AblationStreamWindow = experiments.AblationStreamWindow
	RenderAblations      = experiments.RenderAblations
)

// SpecElement and Spec are mined procedure specifications: repeated blocks
// with iteration bounds (§V's specification-mining use case). Mining,
// merging across runs, and the corpus-level block summary:
type (
	SpecElement = specmine.Element
	Spec        = specmine.Spec
	SpecOptions = specmine.Options
)

var (
	MineSpec      = specmine.Mine
	MergeSpecs    = specmine.Merge
	SpecCoverage  = specmine.Coverage
	TopSpecBlocks = specmine.TopBlocks
)

// RQ1Row and RQ1Result are the leave-one-out procedure-identification
// experiment (§V-A's RQ1).
type (
	RQ1Row    = experiments.RQ1Row
	RQ1Result = experiments.RQ1Result
)

// RQ1Classification runs leave-one-out TF-IDF identification over the 25
// supervised runs.
var (
	RQ1Classification = experiments.RQ1Classification
	RenderRQ1         = experiments.RenderRQ1
)

// PowerIDSRow is one probe of the quantitative RQ3 benchmark.
type PowerIDSRow = experiments.PowerIDSRow

// PowerIDSBenchmark enrols known motions' current signatures and probes the
// power detector with repeats, velocity changes, hidden payloads, and
// unknown trajectories.
var (
	PowerIDSBenchmark = experiments.PowerIDSBenchmark
	RenderPowerIDS    = experiments.RenderPowerIDS
)

// Renderers format experiment results in the paper's table/figure shapes.
var (
	RenderFig4              = experiments.RenderFig4
	RenderFig5a             = experiments.RenderFig5a
	RenderFig5b             = experiments.RenderFig5b
	RenderFig6              = experiments.RenderFig6
	RenderTableI            = experiments.RenderTableI
	RenderSeries            = experiments.RenderSeries
	RenderCorrelationMatrix = experiments.RenderCorrelationMatrix
)
