package rad_test

// The session-resilience chaos harness: the stream listener is killed and
// restarted mid-campaign while a fleet of auto-reconnecting tails (one
// pinned to the legacy v1 protocol) consumes the trace feed. Every tail
// must observe every record exactly once — no gaps across the outage, no
// duplicates from the resume replay — and the whole run must be
// byte-reproducible per seed. Test names deliberately match the CI
// resilience shakeout's -run filter (Resume|Reconnect|Drain|Heartbeat).

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"testing"
	"time"

	"rad"
)

// chaosTailCount is the fleet size; the acceptance floor is eight
// resilient tails riding through the restart.
const chaosTailCount = 8

// runChaosKillRestart runs one full campaign: total records appended to a
// persistent store behind a live broker, the stream listener hard-killed
// at the midpoint and restarted on the same address. It returns one
// content digest per tail, computed over the exact delivery order.
func runChaosKillRestart(t *testing.T, seed uint64, total int) []string {
	t.Helper()
	db, err := rad.OpenTraceDB(t.TempDir(), rad.TraceDBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	broker := rad.NewBroker()
	defer broker.Close()
	broker.AttachStore(db)

	srv := rad.NewStreamServer(broker, db)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	digests := make([]string, chaosTailCount)
	errs := make([]error, chaosTailCount)
	var wg sync.WaitGroup
	for i := 0; i < chaosTailCount; i++ {
		proto := rad.WireProtoAuto
		if i == 0 {
			proto = rad.WireProtoV1 // the legacy peer rides along unchanged
		}
		tail := rad.NewStreamResilientTail(rad.StreamResilientConfig{
			Addr: addr,
			Subscribe: rad.StreamSubscribe{
				Name: fmt.Sprintf("chaos-%d", i), Snapshot: true, Policy: rad.StreamPolicyBlock,
			},
			Proto:       proto,
			Seed:        seed + uint64(i),
			BackoffBase: 5 * time.Millisecond,
			BackoffMax:  100 * time.Millisecond,
		})
		wg.Add(1)
		go func(i int, tail *rad.StreamResilientTail) {
			defer wg.Done()
			defer tail.Close()
			h := sha256.New()
			next := uint64(0)
			for next < uint64(total) {
				ev, err := tail.Recv()
				if err != nil {
					errs[i] = fmt.Errorf("tail %d after seq %d: %w", i, next, err)
					return
				}
				if ev.Kind != rad.StreamEventTrace {
					continue // snapshot-end and resume-gap markers pass through
				}
				// Exactly once, in order: the resilient tail's contract.
				if ev.Record.Seq != next {
					errs[i] = fmt.Errorf("tail %d: seq %d delivered, want %d", i, ev.Record.Seq, next)
					return
				}
				fmt.Fprintf(h, "%d|%s|%s|%s\n", ev.Record.Seq, ev.Record.Device, ev.Record.Name, ev.Record.Run)
				next++
			}
			st := tail.Stats()
			if st.Delivered != uint64(total) || st.GapRecords != 0 {
				errs[i] = fmt.Errorf("tail %d stats %+v, want %d delivered with no gaps", i, st, total)
				return
			}
			digests[i] = hex.EncodeToString(h.Sum(nil))
		}(i, tail)
	}

	appendRange := func(lo, hi int) {
		t.Helper()
		for n := lo; n < hi; n++ {
			if err := db.Append(rad.TraceRecord{
				Device: "C9", Name: fmt.Sprintf("CMD-%d", n), Run: "chaos",
			}); err != nil {
				t.Fatal(err)
			}
		}
	}

	kill := total / 2
	appendRange(0, kill)
	// Durability point, then the outage: flush so the resume snapshot can
	// see everything appended while the listener is down, hard-kill the
	// listener mid-campaign, keep appending into the darkness, restart on
	// the same address. The tails must stitch the two halves seamlessly.
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	appendRange(kill, total*3/4)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	srv2 := rad.NewStreamServer(broker, db)
	if _, err := srv2.Start(addr); err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer srv2.Close()
	appendRange(total*3/4, total)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("chaos tails never finished")
	}
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return digests
}

// TestReconnectChaosKillRestartExactlyOnce: the full acceptance scenario —
// eight resilient tails (one v1) through a mid-campaign listener kill and
// restart; every tail sees [0, total) exactly once, every tail's digest
// matches every other's, and a rerun with the same seed reproduces the
// digests byte for byte.
func TestReconnectChaosKillRestartExactlyOnce(t *testing.T) {
	total := 400
	if testing.Short() {
		total = 120
	}
	first := runChaosKillRestart(t, 42, total)
	for i, d := range first {
		if d == "" {
			t.Fatalf("tail %d produced no digest", i)
		}
		if d != first[0] {
			t.Fatalf("tail %d digest %s != tail 0 digest %s — tails disagree on the record stream", i, d, first[0])
		}
	}
	second := runChaosKillRestart(t, 42, total)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("tail %d digest changed across same-seed reruns:\n  %s\n  %s", i, first[i], second[i])
		}
	}
}
