package rad_test

// Tests of the public facade: everything a downstream user touches, driven
// end to end through the exported API only.

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"rad"
)

func TestPublicQuickstartFlow(t *testing.T) {
	lab, err := rad.NewVirtualLab(rad.VirtualLabConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()

	res := rad.RunSolubilityN9(lab.Lab, rad.ProcedureOptions{Run: "r", Solid: "CSTI", Vials: 1})
	if res.Err != nil {
		t.Fatalf("procedure: %v", res.Err)
	}
	recs := lab.Sink.ByRun("r")
	if len(recs) != res.Commands {
		t.Errorf("traced %d, result says %d", len(recs), res.Commands)
	}
	for _, r := range recs {
		if r.Procedure != rad.ProcedureP1 {
			t.Fatalf("record labelled %q", r.Procedure)
		}
	}
}

func TestPublicCatalogAndTargets(t *testing.T) {
	if got := len(rad.CommandCatalog()); got != 52 {
		t.Errorf("catalog has %d commands", got)
	}
	sum := 0
	for _, n := range rad.DeviceTargets() {
		sum += n
	}
	if sum != rad.TotalTraceObjects {
		t.Errorf("targets sum %d != %d", sum, rad.TotalTraceObjects)
	}
	if len(rad.PowerPropertyNames()) != 122 {
		t.Errorf("power schema size %d", len(rad.PowerPropertyNames()))
	}
}

func TestPublicTraceExportRoundTrip(t *testing.T) {
	lab, err := rad.NewVirtualLab(rad.VirtualLabConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()
	rad.RunJoystick(lab.Lab, rad.ProcedureOptions{Run: "j"}, 5)

	var csvBuf, jsonlBuf bytes.Buffer
	cw, jw := rad.NewCSVWriter(&csvBuf), rad.NewJSONLWriter(&jsonlBuf)
	for _, r := range lab.Sink.All() {
		if err := cw.Append(r); err != nil {
			t.Fatal(err)
		}
		if err := jw.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	fromCSV, err := rad.ReadTraceCSV(&csvBuf)
	if err != nil {
		t.Fatal(err)
	}
	fromJSONL, err := rad.ReadTraceJSONL(&jsonlBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromCSV) != lab.Sink.Len() || len(fromJSONL) != lab.Sink.Len() {
		t.Errorf("round trip: csv %d, jsonl %d, store %d", len(fromCSV), len(fromJSONL), lab.Sink.Len())
	}
}

func TestPublicAnalysesCompose(t *testing.T) {
	seqs := [][]string{
		{"ARM", "MVNG", "ARM", "MVNG", "ARM", "MVNG"},
		{"Q", "A", "Q", "A", "Q"},
	}
	model := rad.TrainNGram(seqs, 2, 0.1)
	if p := model.Perplexity(seqs[0]); p <= 0 {
		t.Errorf("perplexity %v", p)
	}
	top := rad.TopNGrams(seqs, 2, 3)
	if len(top) != 3 {
		t.Errorf("top n-grams: %v", top)
	}
	m := rad.SimilarityMatrix(seqs)
	if m[0][1] > 0.2 {
		t.Errorf("disjoint runs similarity %v", m[0][1])
	}
	upper, _, ok := rad.JenksSplit2([]float64{1, 1.1, 0.9, 8, 8.2})
	if !ok || !upper[3] || upper[0] {
		t.Errorf("jenks split: %v %v", upper, ok)
	}
	box := rad.BoxStats([]float64{1, 2, 3, 4, 100})
	if len(box.Outliers) != 1 {
		t.Errorf("box outliers: %v", box.Outliers)
	}
	if r := rad.Pearson([]float64{1, 2, 3}, []float64{2, 4, 6}); r < 0.999 {
		t.Errorf("pearson %v", r)
	}
}

func TestPublicAttackScenario(t *testing.T) {
	out, err := rad.RunAttackScenario(rad.AttackScenario{
		Name: "t", Procedure: rad.ProcedureP2,
		Attack: rad.AttackConfig{Kind: rad.AttackInjection, StartAfter: 10, Intensity: 0.5, Seed: 2},
		Seed:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Attacked() {
		t.Error("no attack events")
	}
	suite := rad.StandardAttackSuite(1)
	if len(suite) != 7 {
		t.Errorf("suite size %d", len(suite))
	}
}

func TestPublicAutoLabeler(t *testing.T) {
	joy := strings.Fields(strings.Repeat("ARM MVNG MVNG ", 20))
	sol := strings.Fields(strings.Repeat("Q A V target_mass ", 10))
	al, err := rad.NewAutoLabeler([][]string{joy, sol}, []string{"P4", "P1"})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC)
	var recs []rad.TraceRecord
	for i, name := range strings.Fields(strings.Repeat("ARM MVNG MVNG ", 6)) {
		at := t0.Add(time.Duration(i) * time.Second)
		recs = append(recs, rad.TraceRecord{Device: "C9", Name: name, Time: at, EndTime: at})
	}
	segs := al.Label(recs)
	if len(segs) != 1 || segs[0].Label != "P4" {
		t.Errorf("segments: %+v", segs)
	}
}

func TestPublicDatasetSmall(t *testing.T) {
	ds, err := rad.GenerateDataset(rad.GenerateConfig{Seed: 2, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Runs) != 25 {
		t.Errorf("%d supervised runs", len(ds.Runs))
	}
	if err := ds.Verify(); err == nil {
		// Verify may legitimately fail at tiny scales where structured
		// activity overshoots targets; both outcomes are acceptable here —
		// this test only exercises the public path.
		_ = err
	}
	dist := ds.CommandDistribution()
	if len(dist) != 52 {
		t.Errorf("distribution entries: %d", len(dist))
	}
}

func ExampleTrainPerplexityDetector() {
	benign := [][]string{
		{"ARM", "MVNG", "ARM", "MVNG", "ARM", "MVNG", "CURR", "MOVE", "MVNG", "ARM"},
		{"ARM", "MVNG", "MVNG", "ARM", "MVNG", "CURR", "MOVE", "MVNG", "ARM", "MVNG"},
	}
	det, _ := rad.TrainPerplexityDetector(benign, 2)
	weird := []string{"HOME", "OUTP", "BIAS", "HOME", "OUTP", "BIAS", "HOME", "OUTP"}
	fmt.Println(det.Anomalous(weird))
	// Output: true
}

func ExampleCosineSimilarity() {
	v := rad.FitTFIDF([][]string{{"ARM", "MVNG"}, {"Q", "A"}})
	a := v.Transform([]string{"ARM", "MVNG", "ARM"})
	b := v.Transform([]string{"ARM", "MVNG"})
	c := v.Transform([]string{"Q", "A", "Q"})
	fmt.Printf("related=%.2f unrelated=%.2f\n", rad.CosineSimilarity(a, b), rad.CosineSimilarity(a, c))
	// Output: related=0.95 unrelated=0.00
}
