package rad_test

// Benchmarks for the extension substrates: the serial stack, the attack
// interceptor, the power-signature detector, and specification mining.

import (
	"math"
	"testing"
	"time"

	"rad"
	"rad/internal/analysis/specmine"
	"rad/internal/attack"
	"rad/internal/device"
	"rad/internal/device/c9"
	"rad/internal/serial"
	"rad/internal/simclock"
	"rad/internal/wire"
)

// BenchmarkSerialRoundTrip measures one command across the full emulated
// serial stack (client → baud-timed link → firmware → device and back)
// under a virtual clock.
func BenchmarkSerialRoundTrip(b *testing.B) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	labEnd, devEnd := serial.Pipe(clock, clock, serial.DefaultBaud)
	fw := serial.NewFirmware(c9.New(device.NewEnv(clock, 1)), devEnd)
	go fw.Serve()
	defer labEnd.Close()
	client := serial.NewClient(device.C9, labEnd)
	if _, err := client.Exec(device.Command{Name: device.Init}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Exec(device.Command{Name: "MVNG"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAttackInterceptorOverhead measures the MITM interceptor's cost on
// the command path when the attack is dormant and when it tampers.
func BenchmarkAttackInterceptorOverhead(b *testing.B) {
	for _, mode := range []string{"dormant", "tampering"} {
		b.Run(mode, func(b *testing.B) {
			next := nullTransport{}
			startAfter := 1 << 60 // dormant: never activates
			if mode == "tampering" {
				startAfter = 0
			}
			ic := attack.New(next, attack.Config{
				Kind: attack.SpeedTamper, StartAfter: startAfter, Seed: 1,
			})
			req := wire.Request{Op: wire.OpExec, Device: "C9", Name: "SPED", Args: []string{"150"}}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ic.RoundTrip(req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

type nullTransport struct{}

func (nullTransport) RoundTrip(req wire.Request) (wire.Reply, error) {
	return wire.Reply{ID: req.ID, Value: "ok"}, nil
}
func (nullTransport) Close() error { return nil }

// BenchmarkPowerDetectorClassify measures signature matching against an
// enrolled library (the per-move cost of an online power IDS).
func BenchmarkPowerDetectorClassify(b *testing.B) {
	det := rad.NewPowerDetector()
	mk := func(freq float64) []float64 {
		out := make([]float64, 80)
		for i := range out {
			out[i] = math.Sin(float64(i) * freq)
		}
		return out
	}
	for i, f := range []float64{0.05, 0.08, 0.11, 0.14, 0.17} {
		det.Learn([]string{"a", "b", "c", "d", "e"}[i], mk(f))
	}
	probe := mk(0.08)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.Classify(probe); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpecMine measures specification mining over a supervised run.
func BenchmarkSpecMine(b *testing.B) {
	ds := benchDataset(b)
	seqs, _ := ds.SupervisedSequences()
	seq := seqs[21] // a P3 run: loop-heavy
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := specmine.Mine(seq, specmine.Options{})
		if len(spec) == 0 {
			b.Fatal("empty spec")
		}
	}
}

// BenchmarkArgAwareTokenize measures the argument-aware tokenization cost
// per record stream (the added per-command cost over name-only IDS).
func BenchmarkArgAwareTokenize(b *testing.B) {
	lab, err := rad.NewVirtualLab(rad.VirtualLabConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer lab.Close()
	rad.RunSolubilityN9UR(lab.Lab, rad.ProcedureOptions{Run: "r", Seed: 9})
	recs := lab.Sink.ByRun("r")
	q := rad.FitArgQuantizer(recs, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		toks := q.Tokenize(recs)
		if len(toks) != len(recs) {
			b.Fatal("tokenize length mismatch")
		}
	}
}
