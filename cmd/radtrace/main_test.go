package main

import (
	"testing"

	"rad"
	"rad/internal/device"
	"rad/internal/device/c9"
	"rad/internal/device/ika"
	"rad/internal/device/quantos"
	"rad/internal/device/tecan"
	"rad/internal/device/ur3e"
)

// startMiddlebox brings up a full five-device middlebox over loopback TCP.
func startMiddlebox(t *testing.T) (addr string, sink *rad.TraceStore) {
	t.Helper()
	clock := rad.RealClock{}
	sink = rad.NewTraceStore()
	core := rad.NewMiddlebox(clock, sink)
	core.Register(c9.New(device.NewEnv(clock, 1)))
	core.Register(ur3e.New(device.NewEnv(clock, 2), nil))
	core.Register(ika.New(device.NewEnv(clock, 3)))
	core.Register(tecan.New(device.NewEnv(clock, 4)))
	core.Register(quantos.New(device.NewEnv(clock, 5)))
	srv := rad.NewMiddleboxServer(core, rad.NetworkProfile{}, 1)
	a, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return a, sink
}

// TestRadtraceJoystickAgainstLiveMiddlebox runs the CLI's joystick procedure
// against a real TCP middlebox and checks the traces landed.
func TestRadtraceJoystickAgainstLiveMiddlebox(t *testing.T) {
	addr, sink := startMiddlebox(t)
	if err := run([]string{"-middlebox", addr, "-procedure", "P4", "-run", "cli-run", "-presses", "4", "-seed", "5"}); err != nil {
		t.Fatal(err)
	}
	recs := sink.ByRun("cli-run")
	if len(recs) == 0 {
		t.Fatal("no traces recorded")
	}
	for _, r := range recs {
		if r.Procedure != "P4" {
			t.Fatalf("record labelled %q", r.Procedure)
		}
	}
}

func TestRadtraceUnknownProcedure(t *testing.T) {
	addr, _ := startMiddlebox(t)
	if err := run([]string{"-middlebox", addr, "-procedure", "P9"}); err == nil {
		t.Error("unknown procedure accepted")
	}
}

func TestRadtraceUnreachableMiddlebox(t *testing.T) {
	if err := run([]string{"-middlebox", "127.0.0.1:1"}); err == nil {
		t.Error("unreachable middlebox accepted")
	}
}
