// Command radtrace connects to a running middlebox (see cmd/radmiddlebox)
// and executes one of the paper's procedures against it in REMOTE mode, with
// every command traced — the lab computer's side of Fig. 1.
//
// Usage:
//
//	radtrace [-middlebox ADDR] [-procedure P1|P2|P3|P4] [-run LABEL] [-vials N] [-solid NAME]
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	"rad"
	"rad/internal/procedure"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "radtrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("radtrace", flag.ContinueOnError)
	addr := fs.String("middlebox", "127.0.0.1:7780", "middlebox address")
	proc := fs.String("procedure", "P4", "procedure to run: P1, P2, P3, or P4 (joystick)")
	runLabel := fs.String("run", "", "run label for the traces (empty = unsupervised)")
	vials := fs.Int("vials", 0, "vials to screen (0 = procedure default)")
	solid := fs.String("solid", "NABH4", "solid for solubility screens")
	presses := fs.Int("presses", 20, "button presses for joystick sessions")
	seed := fs.Uint64("seed", 0, "per-run random seed (0 = nondeterministic)")
	spanBuffer := fs.Int("span-buffer", 512, "client span flight-recorder ring capacity per CPU shard (0 disables request tracing)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	transport, err := rad.DialMiddlebox(*addr)
	if err != nil {
		return err
	}
	clock := rad.RealClock{}
	sess := rad.NewTracingSession(transport, clock, rad.TracingConfig{DefaultMode: rad.ModeRemote})
	defer sess.Close()
	// The client-side flight recorder brackets every Exec in a client span
	// and stamps its trace context into the outgoing request, so the
	// middlebox's server/exec/store/stream spans stitch under this
	// process's spans (inspect them with radwatch -spans against the
	// middlebox's -obs-addr).
	var spans *rad.SpanRecorder
	if *spanBuffer > 0 {
		spans = rad.NewSpanRecorder(rad.SpanConfig{BufferPerShard: *spanBuffer, Seed: *seed})
		sess.SetSpans(spans)
	}

	// Assemble a Lab whose virtualized devices all point at the remote
	// middlebox. The raw simulators live on the middlebox, so fault
	// injection and payload context are unavailable here — exactly the lab
	// computer's view.
	lab := &rad.Lab{
		Clock:   clock,
		RNG:     rand.New(rand.NewPCG(*seed+1, *seed^0x9e3779b97f4a7c15)),
		Session: sess,
	}
	for name, target := range map[string]*rad.Device{
		rad.DeviceC9: &lab.C9, rad.DeviceUR3e: &lab.UR3e, rad.DeviceIKA: &lab.IKA,
		rad.DeviceTecan: &lab.Tecan, rad.DeviceQuantos: &lab.Quantos,
	} {
		dev, err := sess.Virtual(name)
		if err != nil {
			return err
		}
		*target = dev
	}

	opts := rad.ProcedureOptions{Run: *runLabel, Vials: *vials, Solid: *solid, Seed: *seed}
	var res rad.ProcedureResult
	switch *proc {
	case "P1":
		res = rad.RunSolubilityN9(lab, opts)
	case "P2":
		res = rad.RunSolubilityN9UR(lab, opts)
	case "P3":
		res = rad.RunCrystalSolubility(lab, opts)
	case "P4", "joystick":
		res = rad.RunJoystick(lab, opts, *presses)
	default:
		return fmt.Errorf("unknown procedure %q", *proc)
	}

	status := "complete"
	switch {
	case res.Anomalous:
		status = "ANOMALOUS (crash)"
	case errors.Is(res.Err, procedure.Stopped):
		status = "stopped by operator"
	case res.Err != nil:
		return fmt.Errorf("procedure failed: %w", res.Err)
	}
	fmt.Printf("procedure %s (%s): %d commands traced, %s\n",
		res.Procedure, *runLabel, res.Commands, status)
	if spans != nil {
		st := spans.Stats()
		fmt.Printf("client spans: %d recorded, %d buffered\n", st.Recorded, st.Buffered)
	}
	return nil
}
