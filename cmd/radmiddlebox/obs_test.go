package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"rad"
	"rad/internal/device"
)

// promLine matches one Prometheus text-format sample: a metric name, an
// optional label set, and a value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)

// TestObsMiddleboxMetricsEndpoint boots the CLI with -obs-addr, drives
// commands through it, and checks /metrics returns parseable Prometheus text
// covering the middlebox, tracedb, stream, and fault layers — the PR's
// acceptance criterion — and that /snapshot returns the same data as JSON.
func TestObsMiddleboxMetricsEndpoint(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "tracedb")

	listenReady = make(chan string, 1)
	obsReady = make(chan string, 1)
	defer func() { listenReady = nil; obsReady = nil }()
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0", "-store", storeDir, "-trace", "",
			"-network", "none", "-stream", "127.0.0.1:0",
			"-obs-addr", "127.0.0.1:0",
			// Faults active (so the injection counters register) but with
			// every disruptive kind zeroed: only latency spikes remain, and
			// the driven commands below succeed deterministically.
			"-fault-profile", "flaky,hang=0,drop=0,reset=0,garble=0,sink=0",
		}, stop)
	}()

	var addr, obsAddr string
	for i := 0; i < 2; i++ {
		select {
		case addr = <-listenReady:
		case obsAddr = <-obsReady:
		case err := <-done:
			t.Fatalf("server exited early: %v", err)
		case <-time.After(5 * time.Second):
			t.Fatal("server never came up")
		}
	}

	transport, err := rad.DialMiddlebox(addr)
	if err != nil {
		t.Fatal(err)
	}
	sess := rad.NewTracingSession(transport, rad.RealClock{}, rad.TracingConfig{DefaultMode: rad.ModeRemote})
	dev, err := sess.Virtual(rad.DeviceC9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Exec(rad.Command{Name: device.Init}); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Exec(rad.Command{Name: "MVNG"}); err != nil {
		t.Fatal(err)
	}
	_ = sess.Close()

	// /metrics is parseable Prometheus text naming every layer's families.
	body := httpGet(t, fmt.Sprintf("http://%s/metrics", obsAddr))
	samples := 0
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("unparseable exposition line: %q", line)
		}
		samples++
	}
	if samples == 0 {
		t.Fatal("/metrics returned no samples")
	}
	for _, family := range []string{
		"rad_middlebox_requests_total",
		"rad_middlebox_exec_seconds_bucket",
		"rad_tracedb_append_seconds_bucket",
		"rad_tracedb_records",
		"rad_stream_published_total",
		"rad_fault_injected_total",
		"rad_store_records",
		"rad_parallel_calls_total",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("/metrics missing family %s", family)
		}
	}
	// The driven commands are visible in the exec histogram.
	if !strings.Contains(body, `rad_middlebox_exec_seconds_count{command="MVNG",device="C9"} 1`) {
		t.Errorf("exec histogram missing the MVNG observation:\n%s", body)
	}

	// /snapshot returns the same registry as JSON.
	var snap rad.MetricsSnapshot
	if err := json.Unmarshal([]byte(httpGet(t, fmt.Sprintf("http://%s/snapshot", obsAddr))), &snap); err != nil {
		t.Fatalf("snapshot not JSON: %v", err)
	}
	if len(snap.Counters) == 0 || len(snap.Histograms) == 0 {
		t.Fatalf("snapshot empty: %d counters, %d histograms", len(snap.Counters), len(snap.Histograms))
	}
	execSeen := false
	for _, h := range snap.Histograms {
		if h.Name == "rad_middlebox_exec_seconds" && h.Count > 0 {
			execSeen = true
		}
	}
	if !execSeen {
		t.Error("snapshot has no exec_seconds observations")
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never shut down")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
