package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"rad"
	"rad/internal/device"
)

// TestSpanCrossProcessTraceStitching is the tracing tentpole's end-to-end
// acceptance: a client process's span context crosses the wire into a full
// radmiddlebox deployment (store + stream + telemetry) and the resulting
// /debug/spans tree stitches every layer — client span → server.request →
// wire decode/encode + middlebox.exec → tracedb append → stream delivery —
// into one tree per request, while /healthz reports serving.
func TestSpanCrossProcessTraceStitching(t *testing.T) {
	dir := t.TempDir()
	listenReady = make(chan string, 1)
	streamReady = make(chan string, 1)
	obsReady = make(chan string, 1)
	defer func() { listenReady = nil; streamReady = nil; obsReady = nil }()
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0", "-store", filepath.Join(dir, "tracedb"),
			"-trace", "", "-network", "none",
			"-stream", "127.0.0.1:0", "-obs-addr", "127.0.0.1:0",
			"-span-buffer", "1024",
		}, stop)
	}()
	var addr, streamAddr, obsAddr string
	for i := 0; i < 3; i++ {
		select {
		case addr = <-listenReady:
		case streamAddr = <-streamReady:
		case obsAddr = <-obsReady:
		case err := <-done:
			t.Fatalf("server exited early: %v", err)
		case <-time.After(5 * time.Second):
			t.Fatal("server never came up")
		}
	}

	// A live watcher, so stream-delivery spans are recorded.
	tail, err := rad.DialStreamProto(streamAddr, rad.StreamSubscribe{Name: "stitch-test", Buffer: 64}, rad.WireProtoV2)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	time.Sleep(50 * time.Millisecond) // let the subscription attach

	// The client side of the paper's Fig. 1, with its own flight recorder:
	// every Exec records a client span and stamps its context into the
	// request (wire v2), exactly what radtrace -span-buffer does.
	transport, err := rad.DialMiddlebox(addr)
	if err != nil {
		t.Fatal(err)
	}
	clientSpans := rad.NewSpanRecorder(rad.SpanConfig{Seed: 99})
	sess := rad.NewTracingSession(transport, rad.RealClock{}, rad.TracingConfig{DefaultMode: rad.ModeRemote})
	sess.SetSpans(clientSpans)
	dev, err := sess.Virtual(rad.DeviceC9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Exec(rad.Command{Name: device.Init}); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Exec(rad.Command{Name: "MVNG"}); err != nil {
		t.Fatal(err)
	}
	_ = sess.Close()
	for i := 0; i < 2; i++ {
		if _, err := tail.Recv(); err != nil {
			t.Fatalf("tail recv %d: %v", i, err)
		}
	}

	// /healthz is 200 while serving.
	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", obsAddr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %s while serving, want 200", resp.Status)
	}

	// The client recorder holds one client.exec span per command; index the
	// server trees by trace id and assert each client span parents a fully
	// stitched server tree. stream.deliver is recorded by the stream
	// listener's subscriber goroutine just after the frame is written, so
	// poll briefly for the final shape.
	clientByTrace := make(map[string]rad.Span)
	for _, s := range clientSpans.Spans() {
		if s.Name == "client.exec" {
			clientByTrace[rad.SpanFormatID(s.TraceID)] = s
		}
	}
	if len(clientByTrace) != 2 {
		t.Fatalf("client recorded %d client.exec spans, want 2", len(clientByTrace))
	}

	deadline := time.Now().Add(5 * time.Second)
	var lastErr error
	for {
		var page rad.SpanPageJSON
		r, err := http.Get(fmt.Sprintf("http://%s/debug/spans?limit=0", obsAddr))
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(r.Body).Decode(&page)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		lastErr = verifyStitchedTrees(page, clientByTrace)
		if lastErr == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trees never stitched: %v", lastErr)
		}
		time.Sleep(20 * time.Millisecond)
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never shut down")
	}
}

// verifyStitchedTrees checks that every client span's trace appears as a
// server.request root parented by that client span, with wire codec, exec,
// store-append, and stream-delivery spans all stitched beneath it.
func verifyStitchedTrees(page rad.SpanPageJSON, clientByTrace map[string]rad.Span) error {
	matched := 0
	for _, root := range page.Roots {
		cs, ok := clientByTrace[root.Span.TraceID]
		if !ok {
			continue
		}
		if root.Span.Name != "server.request" {
			return fmt.Errorf("trace %s root is %q, want server.request", root.Span.TraceID, root.Span.Name)
		}
		if want := rad.SpanFormatID(cs.SpanID); root.Span.ParentID != want {
			return fmt.Errorf("trace %s root parent %s, want client span %s", root.Span.TraceID, root.Span.ParentID, want)
		}
		var exec *rad.SpanTreeJSON
		for i := range root.Children {
			c := &root.Children[i]
			switch c.Span.Name {
			case "middlebox.exec":
				exec = c
			case "wire.decode", "wire.encode":
			default:
				return fmt.Errorf("unexpected child %q under trace %s", c.Span.Name, root.Span.TraceID)
			}
		}
		if exec == nil {
			return fmt.Errorf("trace %s has no middlebox.exec child", root.Span.TraceID)
		}
		var gotAppend, gotDeliver bool
		for _, c := range exec.Children {
			switch c.Span.Name {
			case "store.append":
				gotAppend = true
			case "stream.deliver":
				gotDeliver = true
			}
		}
		if !gotAppend {
			return fmt.Errorf("trace %s exec has no store.append child", root.Span.TraceID)
		}
		if !gotDeliver {
			return fmt.Errorf("trace %s exec has no stream.deliver child", root.Span.TraceID)
		}
		matched++
	}
	if matched != len(clientByTrace) {
		return fmt.Errorf("stitched %d of %d client traces", matched, len(clientByTrace))
	}
	return nil
}
