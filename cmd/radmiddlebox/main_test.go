package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"rad"
	"rad/internal/device"
)

// TestMiddleboxServesAndFlushes boots the CLI middlebox, drives a client
// against it, stops it, and checks the trace file was flushed.
func TestMiddleboxServesAndFlushes(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	csvPath := filepath.Join(dir, "trace.csv")
	storeDir := filepath.Join(dir, "tracedb")

	listenReady = make(chan string, 1)
	defer func() { listenReady = nil }()
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0", "-trace", tracePath, "-csv", csvPath,
			"-store", storeDir, "-network", "none",
		}, stop)
	}()

	var addr string
	select {
	case addr = <-listenReady:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never came up")
	}

	transport, err := rad.DialMiddlebox(addr)
	if err != nil {
		t.Fatal(err)
	}
	sess := rad.NewTracingSession(transport, rad.RealClock{}, rad.TracingConfig{DefaultMode: rad.ModeRemote})
	dev, err := sess.Virtual(rad.DeviceC9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Exec(rad.Command{Name: device.Init}); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Exec(rad.Command{Name: "MVNG"}); err != nil {
		t.Fatal(err)
	}
	_ = sess.Close()

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never shut down")
	}

	// Both trace files carry the two commands.
	jf, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	recs, err := rad.ReadTraceJSONL(jf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Errorf("jsonl has %d records, want 2", len(recs))
	}
	cf, err := os.Open(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	fromCSV, err := rad.ReadTraceCSV(cf)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromCSV) != 2 {
		t.Errorf("csv has %d records, want 2", len(fromCSV))
	}

	// The persistent store survives the shutdown and answers the same scan.
	db, err := rad.OpenTraceDB(storeDir, rad.TraceDBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	persisted, err := db.Collect(rad.TraceQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if len(persisted) != 2 {
		t.Errorf("tracedb has %d records, want 2", len(persisted))
	}
	for i, r := range persisted {
		if r.Device != rad.DeviceC9 || r.Seq != uint64(i) {
			t.Errorf("persisted record %d unexpected: %+v", i, r)
		}
	}
}

// TestMiddleboxStreamsLive boots the CLI with -stream, tails the listener
// while a client drives commands, and checks the watcher sees every record
// with the store's sequence numbers.
func TestMiddleboxStreamsLive(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "tracedb")

	listenReady = make(chan string, 1)
	streamReady = make(chan string, 1)
	defer func() { listenReady, streamReady = nil, nil }()
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0", "-stream", "127.0.0.1:0",
			"-store", storeDir, "-trace", "", "-network", "none",
		}, stop)
	}()

	var addr, streamAddr string
	for i := 0; i < 2; i++ {
		select {
		case addr = <-listenReady:
		case streamAddr = <-streamReady:
		case err := <-done:
			t.Fatalf("server exited early: %v", err)
		case <-time.After(5 * time.Second):
			t.Fatal("server never came up")
		}
	}

	watcher, err := rad.DialStream(streamAddr, rad.StreamSubscribe{
		Name: "test-watcher", Policy: rad.StreamPolicyBlock, Buffer: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer watcher.Close()

	transport, err := rad.DialMiddlebox(addr)
	if err != nil {
		t.Fatal(err)
	}
	sess := rad.NewTracingSession(transport, rad.RealClock{}, rad.TracingConfig{DefaultMode: rad.ModeRemote})
	dev, err := sess.Virtual(rad.DeviceC9)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{device.Init, "MVNG", "MVNG"} {
		if _, err := dev.Exec(rad.Command{Name: name}); err != nil {
			t.Fatal(err)
		}
	}
	_ = sess.Close()

	// The watcher receives the three commands with tracedb's seq numbering.
	for want := uint64(0); want < 3; want++ {
		ev, err := watcher.Recv()
		if err != nil {
			t.Fatalf("stream recv %d: %v", want, err)
		}
		if ev.Kind != rad.StreamEventTrace {
			t.Fatalf("event %d kind %q", want, ev.Kind)
		}
		if ev.Record.Seq != want || ev.Record.Device != rad.DeviceC9 {
			t.Errorf("event %d: seq %d device %s", want, ev.Record.Seq, ev.Record.Device)
		}
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never shut down")
	}
}

func TestMiddleboxRejectsBadNetwork(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	if err := run([]string{"-network", "carrier-pigeon", "-trace", ""}, stop); err == nil {
		t.Error("bad network profile accepted")
	}
}

// TestMiddleboxDLQFailoverAcrossRestarts poisons the trace sinks with
// -fault-profile none,sink=1 so every append fails and spills to the
// dead-letter queue, then restarts the middlebox healthy against the same
// -store and -dlq and checks the spilled records were folded back in: the
// lab loses nothing across a sink outage plus a restart.
func TestMiddleboxDLQFailoverAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "tracedb")
	dlqDir := filepath.Join(dir, "dlq")

	boot := func(profile string) (stop chan struct{}, done chan error, addr string) {
		t.Helper()
		listenReady = make(chan string, 1)
		stop = make(chan struct{})
		done = make(chan error, 1)
		go func() {
			done <- run([]string{
				"-listen", "127.0.0.1:0", "-trace", "", "-network", "none",
				"-store", storeDir, "-dlq", dlqDir,
				"-fault-profile", profile,
				"-exec-timeout", "30s", "-retries", "2", "-breaker-threshold", "3",
			}, stop)
		}()
		select {
		case addr = <-listenReady:
		case err := <-done:
			t.Fatalf("server exited early: %v", err)
		case <-time.After(5 * time.Second):
			t.Fatal("server never came up")
		}
		return stop, done, addr
	}
	shutdown := func(stop chan struct{}, done chan error) {
		t.Helper()
		close(stop)
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("shutdown: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("server never shut down")
		}
	}
	drive := func(addr string, names ...string) {
		t.Helper()
		transport, err := rad.DialMiddlebox(addr)
		if err != nil {
			t.Fatal(err)
		}
		sess := rad.NewTracingSession(transport, rad.RealClock{}, rad.TracingConfig{DefaultMode: rad.ModeRemote})
		dev, err := sess.Virtual(rad.DeviceC9)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range names {
			if _, err := dev.Exec(rad.Command{Name: name}); err != nil {
				t.Fatal(err)
			}
		}
		_ = sess.Close()
	}

	// Run 1: every sink append fails; both commands must dead-letter.
	stop, done, addr := boot("none,sink=1")
	drive(addr, device.Init, "MVNG")
	shutdown(stop, done)

	dlq, err := rad.OpenDLQ(dlqDir)
	if err != nil {
		t.Fatal(err)
	}
	if files, err := dlq.Pending(); err != nil || len(files) != 2 {
		t.Fatalf("dlq pending = %v, %v; want 2 spill files", files, err)
	}

	// Run 2: healthy sinks; startup re-ingest folds the dead letters in,
	// and a fresh command lands directly.
	stop, done, addr = boot("")
	drive(addr, device.Init, "MVNG")
	shutdown(stop, done)

	if files, err := dlq.Pending(); err != nil || len(files) != 0 {
		t.Fatalf("dlq pending after restart = %v, %v; want none", files, err)
	}
	db, err := rad.OpenTraceDB(storeDir, rad.TraceDBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	recs, err := db.Collect(rad.TraceQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("recovered store has %d records, want 4 (2 re-ingested + 2 live)", len(recs))
	}
	for _, r := range recs {
		if r.Device != rad.DeviceC9 {
			t.Errorf("unexpected record: %+v", r)
		}
	}
}
