package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"rad"
	"rad/internal/device"
)

// TestMiddleboxServesAndFlushes boots the CLI middlebox, drives a client
// against it, stops it, and checks the trace file was flushed.
func TestMiddleboxServesAndFlushes(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	csvPath := filepath.Join(dir, "trace.csv")
	storeDir := filepath.Join(dir, "tracedb")

	listenReady = make(chan string, 1)
	defer func() { listenReady = nil }()
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0", "-trace", tracePath, "-csv", csvPath,
			"-store", storeDir, "-network", "none",
		}, stop)
	}()

	var addr string
	select {
	case addr = <-listenReady:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never came up")
	}

	transport, err := rad.DialMiddlebox(addr)
	if err != nil {
		t.Fatal(err)
	}
	sess := rad.NewTracingSession(transport, rad.RealClock{}, rad.TracingConfig{DefaultMode: rad.ModeRemote})
	dev, err := sess.Virtual(rad.DeviceC9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Exec(rad.Command{Name: device.Init}); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Exec(rad.Command{Name: "MVNG"}); err != nil {
		t.Fatal(err)
	}
	_ = sess.Close()

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never shut down")
	}

	// Both trace files carry the two commands.
	jf, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	recs, err := rad.ReadTraceJSONL(jf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Errorf("jsonl has %d records, want 2", len(recs))
	}
	cf, err := os.Open(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	fromCSV, err := rad.ReadTraceCSV(cf)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromCSV) != 2 {
		t.Errorf("csv has %d records, want 2", len(fromCSV))
	}

	// The persistent store survives the shutdown and answers the same scan.
	db, err := rad.OpenTraceDB(storeDir, rad.TraceDBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	persisted, err := db.Collect(rad.TraceQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if len(persisted) != 2 {
		t.Errorf("tracedb has %d records, want 2", len(persisted))
	}
	for i, r := range persisted {
		if r.Device != rad.DeviceC9 || r.Seq != uint64(i) {
			t.Errorf("persisted record %d unexpected: %+v", i, r)
		}
	}
}

// TestMiddleboxStreamsLive boots the CLI with -stream, tails the listener
// while a client drives commands, and checks the watcher sees every record
// with the store's sequence numbers.
func TestMiddleboxStreamsLive(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "tracedb")

	listenReady = make(chan string, 1)
	streamReady = make(chan string, 1)
	defer func() { listenReady, streamReady = nil, nil }()
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0", "-stream", "127.0.0.1:0",
			"-store", storeDir, "-trace", "", "-network", "none",
		}, stop)
	}()

	var addr, streamAddr string
	for i := 0; i < 2; i++ {
		select {
		case addr = <-listenReady:
		case streamAddr = <-streamReady:
		case err := <-done:
			t.Fatalf("server exited early: %v", err)
		case <-time.After(5 * time.Second):
			t.Fatal("server never came up")
		}
	}

	watcher, err := rad.DialStream(streamAddr, rad.StreamSubscribe{
		Name: "test-watcher", Policy: rad.StreamPolicyBlock, Buffer: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer watcher.Close()

	transport, err := rad.DialMiddlebox(addr)
	if err != nil {
		t.Fatal(err)
	}
	sess := rad.NewTracingSession(transport, rad.RealClock{}, rad.TracingConfig{DefaultMode: rad.ModeRemote})
	dev, err := sess.Virtual(rad.DeviceC9)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{device.Init, "MVNG", "MVNG"} {
		if _, err := dev.Exec(rad.Command{Name: name}); err != nil {
			t.Fatal(err)
		}
	}
	_ = sess.Close()

	// The watcher receives the three commands with tracedb's seq numbering.
	for want := uint64(0); want < 3; want++ {
		ev, err := watcher.Recv()
		if err != nil {
			t.Fatalf("stream recv %d: %v", want, err)
		}
		if ev.Kind != rad.StreamEventTrace {
			t.Fatalf("event %d kind %q", want, ev.Kind)
		}
		if ev.Record.Seq != want || ev.Record.Device != rad.DeviceC9 {
			t.Errorf("event %d: seq %d device %s", want, ev.Record.Seq, ev.Record.Device)
		}
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never shut down")
	}
}

func TestMiddleboxRejectsBadNetwork(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	if err := run([]string{"-network", "carrier-pigeon", "-trace", ""}, stop); err == nil {
		t.Error("bad network profile accepted")
	}
}
