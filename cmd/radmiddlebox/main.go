// Command radmiddlebox runs a standalone trusted middlebox: it hosts the
// five simulated Hein Lab devices, serves the wire protocol over TCP, and
// logs every command to a persistent tracedb store and/or JSONL/CSV trace
// files — the deployment of Fig. 1 with the physical devices replaced by
// simulators and the MongoDB instance by the embedded store.
//
// Usage:
//
//	radmiddlebox [-listen ADDR] [-store DIR] [-trace FILE.jsonl] [-csv FILE.csv] [-network lan|cloud|none] [-power] [-stream ADDR] [-proto auto|v1|v2] [-fleet [-tenants N]]
//
// Stop with SIGINT/SIGTERM: the listeners drain gracefully — in-flight
// execs finish, replies and subscriber rings flush, tenant stores sync —
// within the -drain-timeout budget before stragglers are severed, and
// traces are flushed on shutdown. -heartbeat pings v2 stream subscribers
// and reaps the silent ones; -idle-timeout does the same for half-open
// exec connections. A -store
// directory survives crashes (torn tails are truncated on reopen) and is
// queryable with radquery while the middlebox is down.
//
// -stream opens a second listener serving the live trace feed (tail it with
// radwatch, or radquery -follow): every committed record fans out to
// connected subscribers through per-connection bounded rings, and with
// -store set, new subscribers can replay the whole store before going live
// (snapshot-then-follow). Per-subscriber delivery counters appear in the
// shutdown summary.
//
// -fleet turns the listener multi-tenant: requests tagged with a tenant ID
// route to lazily-instantiated independent labs (own devices, fault
// wrappers, exec policies, per-tenant dead letters under -dlq, and their
// own live broker with -stream), while untagged peers keep reaching the
// default lab exactly as before. -tenants caps how many labs the process
// will instantiate.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rad"
	"rad/internal/device"
	"rad/internal/device/c9"
	"rad/internal/device/ika"
	"rad/internal/device/quantos"
	"rad/internal/device/tecan"
	"rad/internal/device/ur3e"
	"rad/internal/power"
)

func main() {
	stop := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		close(stop)
	}()
	if err := run(os.Args[1:], stop); err != nil {
		fmt.Fprintln(os.Stderr, "radmiddlebox:", err)
		os.Exit(1)
	}
}

// run serves until stop closes (main wires stop to SIGINT/SIGTERM; tests
// close it directly).
func run(args []string, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("radmiddlebox", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7780", "listen address")
	storeDir := fs.String("store", "", "persistent tracedb directory ('' disables)")
	tracePath := fs.String("trace", "middlebox-trace.jsonl", "JSONL trace log ('' disables)")
	csvPath := fs.String("csv", "", "additional CSV trace log ('' disables)")
	network := fs.String("network", "lan", "emulated network profile: lan, cloud, or none")
	withPower := fs.Bool("power", true, "attach the UR3e power monitor")
	streamAddr := fs.String("stream", "", "live-stream listen address ('' disables)")
	protoFlag := fs.String("proto", "auto", "wire protocol served to clients: auto (negotiate per connection), v1 (JSON only), or v2 (binary only)")
	obsAddr := fs.String("obs-addr", "", "telemetry listen address serving /metrics, /snapshot, and /debug/pprof ('' disables)")
	seed := fs.Uint64("seed", 1, "device simulation seed")
	faultSpec := fs.String("fault-profile", "", "fault-injection profile: none, flaky, or chaos, with optional key=value overrides (e.g. flaky,hang=0.01)")
	execTimeout := fs.Duration("exec-timeout", 0, "per-exec deadline (0 disables)")
	execRetries := fs.Int("retries", 0, "extra attempts for idempotent commands after infrastructure failures")
	breakerThreshold := fs.Int("breaker-threshold", 0, "consecutive infrastructure failures that open a device's circuit breaker (0 disables)")
	breakerCooldown := fs.Duration("breaker-cooldown", 30*time.Second, "open-breaker cooldown before a half-open probe")
	breakerProbes := fs.Int("breaker-probes", 1, "successful half-open probes required to close a breaker")
	dlqDir := fs.String("dlq", "", "dead-letter directory: trace batches the sinks refuse spill here and re-ingest into -store on the next start ('' disables failover)")
	compactEvery := fs.Duration("compact-every", 0, "background storage-lifecycle cadence for -store: retention then compaction each interval (0 disables)")
	retainAge := fs.Duration("retain-age", 0, "retention: retire sealed -store segments older than this (0 keeps everything)")
	retainBytes := fs.Int64("retain-bytes", 0, "retention: retire oldest sealed -store segments past this byte budget (0 is unlimited)")
	heartbeat := fs.Duration("heartbeat", 0, "stream liveness: ping v2 subscribers at this interval and reap any that stop answering (0 disables)")
	idleTimeout := fs.Duration("idle-timeout", 0, "reap exec connections idle past this deadline — half-open peers stop holding sockets and goroutines (0 disables)")
	drainTimeout := fs.Duration("drain-timeout", 5*time.Second, "graceful-shutdown budget on SIGINT/SIGTERM: in-flight requests finish and subscriber rings flush before connections are severed (0 closes immediately)")
	spanBuffer := fs.Int("span-buffer", 512, "span flight-recorder ring capacity per CPU shard (0 disables request tracing)")
	spanSample := fs.Uint64("span-sample", 0, "trace sampling: keep one trace in N (0 or 1 keeps every trace)")
	slowSpan := fs.Duration("slow-span", 0, "log every span at least this long (0 disables the slow-span log)")
	fleetMode := fs.Bool("fleet", false, "serve a multi-tenant fleet: tenant-tagged requests route to lazily-instantiated per-tenant labs; untagged peers keep reaching the default lab unchanged")
	maxTenants := fs.Int("tenants", rad.FleetDefaultMaxTenants, "labs one -fleet listener will instantiate before refusing new tenant IDs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	faults, err := rad.ParseFaultProfile(*faultSpec)
	if err != nil {
		return err
	}
	proto, err := rad.ParseWireProto(*protoFlag)
	if err != nil {
		return err
	}

	var profile rad.NetworkProfile
	switch *network {
	case "lan":
		profile = rad.LANProfile()
	case "cloud":
		profile = rad.CloudProfile()
	case "none":
	default:
		return fmt.Errorf("unknown network profile %q", *network)
	}

	// Telemetry registry: every layer below registers its instruments here
	// when -obs-addr is set; nil keeps all hot paths uninstrumented.
	var reg *rad.MetricsRegistry
	if *obsAddr != "" {
		reg = rad.NewMetricsRegistry()
		rad.ObserveParallel(reg)
		rad.RegisterRuntimeMetrics(reg)
	}
	clock := rad.RealClock{}

	// Span flight recorder: always-on request tracing in bounded memory.
	// Every layer below gets the same recorder, so one request's client,
	// wire, exec, store, and stream spans assemble into one tree at
	// /debug/spans. A nil recorder (-span-buffer 0) keeps every hot path at
	// a single pointer check.
	var spans *rad.SpanRecorder
	if *spanBuffer > 0 {
		spans = rad.NewSpanRecorder(rad.SpanConfig{
			BufferPerShard: *spanBuffer,
			Seed:           *seed,
			SampleEvery:    *spanSample,
			SlowThreshold:  *slowSpan,
			OnSlow: func(s rad.Span) {
				fmt.Printf("slow span: %s %s/%s %.1fms trace=%s\n",
					s.Name, s.Tenant, s.Outcome, float64(s.Duration())/1e6, rad.SpanFormatID(s.TraceID))
			},
		})
	}
	spanTenant := ""
	if *fleetMode {
		spanTenant = rad.FleetDefaultTenant
	}

	// Trace sinks: in-memory store for stats plus the optional persistent
	// store and file logs.
	mem := rad.NewTraceStore()
	sinks := []rad.TraceSink{mem}
	var flushers []interface{ Flush() error }
	var tdb *rad.TraceDB
	if *storeDir != "" {
		db, err := rad.OpenTraceDB(*storeDir, rad.TraceDBOptions{Clock: clock,
			Lifecycle: rad.TraceLifecycleOptions{
				Interval:       *compactEvery,
				RetainMaxAge:   *retainAge,
				RetainMaxBytes: *retainBytes,
			}})
		if err != nil {
			return err
		}
		defer db.Close()
		tdb = db
		sinks = append(sinks, tdb)
		if reg != nil {
			tdb.Observe(reg)
		}
	}
	if reg != nil {
		mem.Observe(reg)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		w := rad.NewJSONLWriter(f)
		sinks = append(sinks, w)
		flushers = append(flushers, w)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w := rad.NewCSVWriter(f)
		sinks = append(sinks, w)
		flushers = append(flushers, w)
	}

	// The tee forwards commit notifications from its sequencing sink (the
	// tracedb when present, else the memory store) so an attached broker
	// publishes records with their authoritative sequence numbers.
	var seqSink rad.TraceSink = mem
	if tdb != nil {
		seqSink = tdb
	}
	var sink rad.TraceSink = &teeSink{sinks: sinks, seq: seqSink}
	if faults.SinkErrProb > 0 {
		flaky := rad.WrapFlakySink(sink, faults, *seed+9)
		if reg != nil {
			flaky.Observe(reg)
		}
		sink = flaky
	}
	var dlq *rad.DeadLetterQueue
	var failover *rad.FailoverSink
	if *dlqDir != "" {
		dlq, err = rad.OpenDLQ(*dlqDir)
		if err != nil {
			return err
		}
		// Fold dead letters from a previous run back into the store before
		// serving: the middlebox restarts with nothing owed.
		if tdb != nil {
			n, err := tdb.Reingest(dlq)
			if err != nil {
				return fmt.Errorf("dlq re-ingest: %w", err)
			}
			if n > 0 {
				fmt.Printf("dlq: re-ingested %d spilled records from %s\n", n, *dlqDir)
			}
		}
		failover = rad.NewFailoverSink(sink, dlq)
		failover.SetSpans(spans, spanTenant)
		if reg != nil {
			failover.Observe(reg)
		}
		sink = failover
	}
	core := rad.NewMiddlebox(clock, sink)
	core.SetSpans(spans, spanTenant)
	if reg != nil {
		core.Observe(reg)
	}

	var monitor *power.Monitor
	if *withPower {
		monitor = power.NewMonitor(power.DefaultModel(), clock, *seed^0x5bf0)
	}

	// applyPolicy hardens a core with the exec-policy flags; it applies to
	// the default lab below and to every lazily-built fleet tenant.
	applyPolicy := func(c *rad.Middlebox) {
		if *execTimeout > 0 || *execRetries > 0 || *breakerThreshold > 0 {
			c.SetExecPolicy(rad.ExecPolicy{
				Timeout:   *execTimeout,
				Retries:   *execRetries,
				RetrySeed: *seed,
				Breaker: rad.BreakerConfig{
					Threshold: *breakerThreshold,
					Cooldown:  *breakerCooldown,
					Probes:    *breakerProbes,
				},
			})
		}
	}

	var broker *rad.Broker
	var streamSrv *rad.StreamServer

	// Fleet mode: the fully-configured lab built above becomes the default
	// tenant (untagged peers see no change), and tenant-tagged requests
	// lazily instantiate independent labs — own devices, fault wrappers,
	// policies, per-tenant dead letters under -dlq, and their own live
	// broker when -stream is set.
	var handler rad.MiddleboxHandler = core
	var fleetRouter *rad.FleetRouter
	if *fleetMode {
		fleetRouter, err = rad.NewFleetRouter(rad.FleetConfig{
			MaxTenants: *maxTenants,
			Registry:   reg,
			Spans:      spans,
			Factory: func(id string) (*rad.FleetResources, error) {
				if id == rad.FleetDefaultTenant {
					return &rad.FleetResources{Core: core, Broker: broker, DB: tdb}, nil
				}
				tseed := rad.FleetTenantSeed(*seed, id)
				mem := rad.NewTraceStore()
				var sink rad.TraceSink = mem
				res := &rad.FleetResources{}
				if faults.SinkErrProb > 0 {
					sink = rad.WrapFlakySink(sink, faults, tseed^9)
				}
				if *dlqDir != "" {
					tdlq, err := rad.OpenTenantDLQ(*dlqDir, id)
					if err != nil {
						return nil, err
					}
					res.DLQ = tdlq
					tfo := rad.NewFailoverSink(sink, tdlq)
					tfo.SetSpans(spans, id)
					sink = tfo
				}
				tcore := rad.NewMiddlebox(clock, sink)
				tcore.SetSpans(spans, id)
				if *streamAddr != "" {
					b := rad.NewBroker()
					tcore.AttachBroker(b)
					res.Broker = b
					res.Close = func() error { b.Close(); return nil }
				}
				tenantDevices := []rad.Device{
					c9.New(device.NewEnv(clock, tseed+1)),
					ur3e.New(device.NewEnv(clock, tseed+2), nil),
					ika.New(device.NewEnv(clock, tseed+3)),
					tecan.New(device.NewEnv(clock, tseed+4)),
					quantos.New(device.NewEnv(clock, tseed+5)),
				}
				for i, d := range tenantDevices {
					if faults.Active() {
						d = rad.WrapFaultyDevice(d, clock, faults, tseed+10+uint64(i))
					}
					tcore.Register(d)
				}
				applyPolicy(tcore)
				res.Core = tcore
				return res, nil
			},
		})
		if err != nil {
			return err
		}
		defer fleetRouter.Close()
		handler = fleetRouter
	}

	if *streamAddr != "" {
		broker = rad.NewBroker()
		if reg != nil {
			broker.Observe(reg)
		}
		core.AttachBroker(broker)
		if monitor != nil {
			stopBridge := broker.AttachMonitor(monitor, 256)
			defer stopBridge()
		}
		streamSrv = rad.NewStreamServer(broker, tdb)
		streamSrv.SetSpans(spans)
		streamSrv.SetProtocol(proto)
		if *heartbeat > 0 {
			streamSrv.SetHeartbeat(rad.StreamHeartbeat{Interval: *heartbeat})
		}
		if fleetRouter != nil {
			streamSrv.SetTenantResolver(fleetRouter.ResolveStream)
		}
		if reg != nil {
			streamSrv.Observe(reg)
		}
		saddr, err := streamSrv.Start(*streamAddr)
		if err != nil {
			return err
		}
		defer streamSrv.Close()
		fmt.Printf("stream listening on %s\n", saddr)
		if streamReady != nil {
			streamReady <- saddr
		}
	}
	devices := []rad.Device{
		c9.New(device.NewEnv(clock, *seed+1)),
		ur3e.New(device.NewEnv(clock, *seed+2), monitor),
		ika.New(device.NewEnv(clock, *seed+3)),
		tecan.New(device.NewEnv(clock, *seed+4)),
		quantos.New(device.NewEnv(clock, *seed+5)),
	}
	for i, d := range devices {
		if faults.Active() {
			fd := rad.WrapFaultyDevice(d, clock, faults, *seed+10+uint64(i))
			if reg != nil {
				fd.Observe(reg)
			}
			d = fd
		}
		core.Register(d)
	}
	applyPolicy(core)

	srv := rad.NewMiddleboxHandlerServer(handler, profile, *seed+6)
	srv.SetSpans(spans)
	srv.SetProtocol(proto)
	if *idleTimeout > 0 {
		srv.SetIdleTimeout(*idleTimeout)
	}
	if reg != nil {
		srv.Observe(reg)
	}

	var obsSrv *http.Server
	if *obsAddr != "" {
		ln, err := net.Listen("tcp", *obsAddr)
		if err != nil {
			return err
		}
		// /healthz flips to 503 the moment any listener begins draining, so
		// a balancer stops routing to a middlebox that is shutting down;
		// /debug/spans serves the flight recorder's recent trace trees.
		opts := rad.MetricsMuxOptions{Health: func() bool {
			if srv.Draining() {
				return false
			}
			if streamSrv != nil && streamSrv.Draining() {
				return false
			}
			if fleetRouter != nil && fleetRouter.Draining() {
				return false
			}
			return true
		}}
		if spans != nil {
			opts.Spans = rad.SpanHandler(spans)
		}
		obsSrv = &http.Server{Handler: rad.NewMetricsMuxWith(reg, opts)}
		go func() { _ = obsSrv.Serve(ln) }()
		defer obsSrv.Close()
		fmt.Printf("telemetry listening on http://%s/metrics\n", ln.Addr())
		if obsReady != nil {
			obsReady <- ln.Addr().String()
		}
	}
	addr, err := srv.Start(*listen)
	if err != nil {
		return err
	}
	fmt.Printf("middlebox listening on %s (network=%s, power=%t, proto=%s)\n", addr, *network, *withPower, proto)
	if fleetRouter != nil {
		fmt.Printf("fleet mode: up to %d tenant labs\n", *maxTenants)
	}
	if faults.Active() {
		fmt.Printf("fault injection active: %s\n", *faultSpec)
	}
	if listenReady != nil {
		listenReady <- addr
	}
	<-stop

	// Graceful drain: one -drain-timeout budget shared by the exec
	// listener, the stream listener, and the fleet router. In-flight execs
	// finish and their replies flush, subscriber rings empty, and tenant
	// stores sync; only stragglers past the budget are severed. A timeout
	// degrades the shutdown, it does not fail it.
	drainCtx := context.Background()
	if *drainTimeout > 0 {
		var cancel context.CancelFunc
		drainCtx, cancel = context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Drain(drainCtx); err != nil {
			fmt.Fprintf(os.Stderr, "radmiddlebox: exec drain: %v (stragglers severed)\n", err)
		}
	} else if err := srv.Close(); err != nil {
		return err
	}
	for _, f := range flushers {
		if err := f.Flush(); err != nil {
			return err
		}
	}
	stats := core.Snapshot()
	fmt.Printf("\nshut down: %d execs, %d trace uploads, %d pings, %d errors; %d records logged\n",
		stats.Execs, stats.Traces, stats.Pings, stats.Errors, mem.Len())
	if fleetRouter != nil {
		fst := fleetRouter.Snapshot()
		fmt.Printf("fleet: %d tenant labs, %d requests routed, %d rejected\n",
			fst.Tenants, fst.Routed, fst.Rejected)
		for _, ts := range fst.PerTenant {
			fmt.Printf("  %-24s routed %d, execs %d, errors %d\n",
				ts.ID, ts.Requests, ts.Stats.Execs, ts.Stats.Errors)
		}
	}
	res := stats.Resilience
	if res.Timeouts+res.Retries+res.Shed+res.InfraErrors > 0 || len(res.Breakers) > 0 {
		fmt.Printf("resilience: %d timeouts, %d retries, %d shed, %d infra errors\n",
			res.Timeouts, res.Retries, res.Shed, res.InfraErrors)
		for _, b := range res.Breakers {
			fmt.Printf("  breaker %-8s %-9s opened %d, probed %d, shed %d\n",
				b.Device, b.State, b.Opens, b.Probes, b.Sheds)
		}
	}
	if spans != nil {
		sst := spans.Stats()
		fmt.Printf("spans: %d recorded, %d buffered, %d evicted, %d sampled out\n",
			sst.Recorded, sst.Buffered, sst.Evicted, sst.Sampled)
	}
	if failover != nil {
		fst := failover.Stats()
		fmt.Printf("failover: %d primary errors, %d batches (%d records) dead-lettered to %s\n",
			fst.PrimaryErrors, fst.SpilledBatches, fst.SpilledRecords, dlq.Dir())
	}
	if streamSrv != nil {
		if *drainTimeout > 0 {
			if err := streamSrv.Drain(drainCtx); err != nil {
				fmt.Fprintf(os.Stderr, "radmiddlebox: stream drain: %v (stragglers severed)\n", err)
			}
		} else if err := streamSrv.Close(); err != nil {
			return err
		}
		fmt.Printf("stream: %d records published, %d subscribers at shutdown\n",
			broker.Published(), len(stats.Subscribers))
		for _, s := range stats.Subscribers {
			lag := ""
			if s.Lagging {
				lag = " (lagging)"
			}
			fmt.Printf("  %-24s delivered %d, dropped %d, buffered %d/%d%s\n",
				s.Name, s.Delivered, s.Dropped, s.Buffered, s.Capacity, lag)
		}
	}
	if fleetRouter != nil && *drainTimeout > 0 {
		// Tenant labs drain too: their brokers close and their stores sync
		// before the deferred Close severs anything.
		if err := fleetRouter.Drain(drainCtx); err != nil {
			fmt.Fprintf(os.Stderr, "radmiddlebox: fleet drain: %v\n", err)
		}
	}
	if tdb != nil {
		if err := tdb.Flush(); err != nil {
			return err
		}
		fmt.Printf("tracedb: %d records persisted to %s (%d segments)\n",
			tdb.Len(), tdb.Dir(), tdb.Segments())
		if lc := tdb.Lifecycle(); lc.Compactions > 0 || lc.SegmentsRetired > 0 {
			fmt.Printf("tracedb lifecycle: %d compactions (%d blocks merged), %d segments retired, %d records dropped, %d bytes reclaimed\n",
				lc.Compactions, lc.BlocksMerged, lc.SegmentsRetired, lc.RecordsDropped, lc.BytesReclaimed)
		}
	}
	if monitor != nil {
		fmt.Printf("power samples recorded: %d\n", monitor.Len())
	}
	return nil
}

// listenReady, streamReady, and obsReady, when set by a test, receive the
// bound addresses once the respective listeners are up.
var (
	listenReady chan string
	streamReady chan string
	obsReady    chan string
)

// teeSink fans records to all sinks and forwards commit notifications from
// its designated sequencing sink, so Middlebox.AttachBroker sees a
// TraceNotifier and wires the broker to authoritative sequence numbers.
type teeSink struct {
	sinks []rad.TraceSink
	seq   rad.TraceSink
}

func (t *teeSink) Append(r rad.TraceRecord) error {
	for _, s := range t.sinks {
		if err := s.Append(r); err != nil {
			return err
		}
	}
	return nil
}

// SetOnCommit implements rad.TraceNotifier by delegating to the sequencing
// sink.
func (t *teeSink) SetOnCommit(fn func([]rad.TraceRecord)) {
	if n, ok := t.seq.(rad.TraceNotifier); ok {
		n.SetOnCommit(fn)
	}
}
