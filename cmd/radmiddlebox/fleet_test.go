package main

import (
	"testing"
	"time"

	"rad"
	"rad/internal/device"
	"rad/internal/wire"
)

// TestMiddleboxFleetMode boots the CLI in -fleet mode and checks that
// tenant-tagged requests reach their own lazily-created labs, untagged
// peers keep working against the default lab, and hostile tenant IDs are
// refused — all over one listener.
func TestMiddleboxFleetMode(t *testing.T) {
	listenReady = make(chan string, 1)
	defer func() { listenReady = nil }()
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0", "-trace", "", "-network", "none",
			"-fleet", "-tenants", "8", "-dlq", t.TempDir(),
		}, stop)
	}()

	var addr string
	select {
	case addr = <-listenReady:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never came up")
	}

	// An untagged legacy session lands on the default lab unchanged.
	transport, err := rad.DialMiddlebox(addr)
	if err != nil {
		t.Fatal(err)
	}
	sess := rad.NewTracingSession(transport, rad.RealClock{}, rad.TracingConfig{DefaultMode: rad.ModeRemote})
	dev, err := sess.Virtual(rad.DeviceC9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Exec(rad.Command{Name: device.Init}); err != nil {
		t.Fatal(err)
	}
	_ = sess.Close()

	// Tenant-tagged binary-protocol requests instantiate and drive their
	// own labs; each tenant must run its own device lifecycle (Init works
	// per lab, proving the C9s are distinct instances).
	tagged, err := rad.DialMiddleboxProto(addr, rad.WireProtoV2)
	if err != nil {
		t.Fatal(err)
	}
	defer tagged.Close()
	for _, tenant := range []string{"lab-a", "lab-b"} {
		for i, name := range []string{device.Init, "MVNG"} {
			rep, err := tagged.RoundTrip(wire.Request{
				ID: uint64(i + 1), Op: wire.OpExec, Tenant: tenant,
				Device: rad.DeviceC9, Name: name,
			})
			if err != nil {
				t.Fatalf("%s %s: %v", tenant, name, err)
			}
			if rep.Error != "" {
				t.Fatalf("%s %s: server error %q", tenant, name, rep.Error)
			}
		}
	}

	// A path-hostile tenant ID is refused with an error reply, not a lab.
	rep, err := tagged.RoundTrip(wire.Request{
		ID: 9, Op: wire.OpExec, Tenant: "../escape", Device: rad.DeviceC9, Name: "MVNG",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Error == "" {
		t.Fatal("hostile tenant ID accepted")
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never shut down")
	}
}
