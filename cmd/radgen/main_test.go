package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rad"
)

// TestRadgenWritesDataset runs the generator end to end into a temp
// directory and validates every artifact it writes.
func TestRadgenWritesDataset(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "tracedb")
	if err := run([]string{"-seed", "3", "-scale", "0.01", "-out", dir, "-format", "both",
		"-store", storeDir}); err != nil {
		t.Fatal(err)
	}

	// The command dataset round-trips through both formats.
	csvFile, err := os.Open(filepath.Join(dir, "commands.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer csvFile.Close()
	fromCSV, err := rad.ReadTraceCSV(csvFile)
	if err != nil {
		t.Fatal(err)
	}
	jsonlFile, err := os.Open(filepath.Join(dir, "commands.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer jsonlFile.Close()
	fromJSONL, err := rad.ReadTraceJSONL(jsonlFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromCSV) == 0 || len(fromCSV) != len(fromJSONL) {
		t.Fatalf("csv %d records, jsonl %d", len(fromCSV), len(fromJSONL))
	}

	// The tracedb ingest holds the same campaign, queryable from disk.
	db, err := rad.OpenTraceDB(storeDir, rad.TraceDBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Len() != len(fromJSONL) {
		t.Errorf("tracedb has %d records, exports have %d", db.Len(), len(fromJSONL))
	}
	wantRuns := 25
	if got := len(db.Runs()); got != wantRuns {
		t.Errorf("tracedb indexes %d runs, want %d", got, wantRuns)
	}

	// The run index lists the 25 supervised runs.
	runsRaw, err := os.ReadFile(filepath.Join(dir, "runs.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(runsRaw)), "\n")
	if len(lines) != 26 { // header + 25
		t.Errorf("runs.csv has %d lines, want 26", len(lines))
	}
	anomalous := 0
	for _, line := range lines[1:] {
		if strings.Contains(line, ",true,") {
			anomalous++
		}
	}
	if anomalous != 3 {
		t.Errorf("runs.csv marks %d anomalies, want 3", anomalous)
	}

	// One power CSV per supervised P2 run, with the 122-property header.
	matches, err := filepath.Glob(filepath.Join(dir, "power-run-*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 4 {
		t.Fatalf("%d power files, want 4 (P2 runs)", len(matches))
	}
	head, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(string(head), "\n", 2)[0]
	if got := strings.Count(header, ","); got != 122 {
		t.Errorf("power header has %d value columns, want 122", got)
	}

	// The features-description document covers the catalog, the runs, and
	// the power schema.
	descRaw, err := os.ReadFile(filepath.Join(dir, "RAD_Description.md"))
	if err != nil {
		t.Fatal(err)
	}
	desc := string(descRaw)
	for _, want := range []string{
		"Features Description", "52 command types", "Supervised runs",
		"`MVNG`", "`start_dosing`", "run-24", "`actual_current_0`",
	} {
		if !strings.Contains(desc, want) {
			t.Errorf("RAD_Description.md missing %q", want)
		}
	}
}

func TestRadgenRejectsBadFormat(t *testing.T) {
	if err := run([]string{"-format", "parquet", "-out", t.TempDir()}); err == nil {
		t.Error("bad format accepted")
	}
}

func TestRadgenDLQRequiresStore(t *testing.T) {
	if err := run([]string{"-dlq", t.TempDir()}); err == nil {
		t.Error("-dlq without -store accepted")
	}
}

// TestRadgenFoldsDLQIntoStore pre-seeds a dead-letter directory (as a
// crashed middlebox would leave it) and checks radgen -store -dlq folds
// the spilled records into the generated tracedb.
func TestRadgenFoldsDLQIntoStore(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "tracedb")
	dlqDir := filepath.Join(dir, "dlq")
	dlq, err := rad.OpenDLQ(dlqDir)
	if err != nil {
		t.Fatal(err)
	}
	spilled := []rad.TraceRecord{
		{Device: "C9", Name: "MVNG", Mode: "REMOTE"},
		{Device: "IKA", Name: "IN_PV_4", Mode: "REMOTE"},
	}
	if err := dlq.Spill(spilled); err != nil {
		t.Fatal(err)
	}

	if err := run([]string{"-seed", "3", "-scale", "0.01", "-out", dir, "-format", "csv",
		"-store", storeDir, "-dlq", dlqDir}); err != nil {
		t.Fatal(err)
	}

	if files, err := dlq.Pending(); err != nil || len(files) != 0 {
		t.Fatalf("dlq pending = %v, %v; want drained", files, err)
	}
	db, err := rad.OpenTraceDB(storeDir, rad.TraceDBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	byDev := db.CountByDevice()
	for _, dev := range []string{"C9", "IKA"} {
		if byDev[dev] == 0 {
			t.Errorf("no %s records in the recovered store", dev)
		}
	}
}
