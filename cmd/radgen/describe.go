package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	"rad"
)

// writeDescription generates RAD_Description.md — the analog of the paper's
// dataset documentation ("Robotic Arm Dataset (RAD) Features Description"):
// the record schema, the 52-command catalog with human-readable names, the
// supervised-run index with anomaly ground truth, and the 122-property power
// schema.
func writeDescription(path string, ds *rad.Dataset, seed uint64, scale float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()

	p := func(format string, args ...any) { fmt.Fprintf(f, format+"\n", args...) }

	p("# Robotic Arm Dataset (RAD) — Features Description")
	p("")
	p("Synthetic reproduction generated %s (seed %d, scale %.2f).",
		time.Now().UTC().Format(time.RFC3339), seed, scale)
	p("")
	p("## Command dataset")
	p("")
	p("%d trace objects. One record per command instance, fields:", ds.Store.Len())
	p("")
	p("| Field | Meaning |")
	p("|---|---|")
	p("| seq | monotone sequence number assigned at logging |")
	p("| time / end_time | command start and completion as observed at the interception point |")
	p("| device | one of C9, UR3e, IKA, Tecan, Quantos |")
	p("| name | command type (one of the 52 below) |")
	p("| args | stringified arguments, '|'-separated in the CSV export |")
	p("| response | the device's return value |")
	p("| exception | error text when the command failed (collisions, bad arguments) |")
	p("| procedure | procedure type for supervised runs; %q otherwise |", rad.UnknownProcedure)
	p("| run | supervised run identifier (run-0 … run-24) |")
	p("| mode | DIRECT or REMOTE interception |")
	p("")
	p("## The 52 command types")
	p("")
	counts := ds.Store.CountByCommand()
	p("| Device | Command | Readable name | Mutating | Count |")
	p("|---|---|---|---|---|")
	for _, spec := range rad.CommandCatalog() {
		p("| %s | `%s` | %s | %t | %d |",
			spec.Device, spec.Name, spec.Readable, spec.Mutating, counts[spec.Key()])
	}
	p("")
	p("## Supervised runs")
	p("")
	p("25 runs in Fig. 6 ID order; 3 anomalous (physical crashes).")
	p("")
	p("| ID | Run | Procedure | Commands | Anomalous | Note |")
	p("|---|---|---|---|---|---|")
	for _, run := range ds.Runs {
		p("| %d | %s | %s | %d | %t | %s |",
			run.ID, run.Run, run.Procedure, run.Commands, run.Anomalous, run.Note)
	}
	p("")
	p("## Power dataset")
	p("")
	p("UR3e telemetry at 25 Hz (one entry per 40 ms), captured for the")
	p("supervised P2 runs. Each entry holds %d properties:", len(rad.PowerPropertyNames()))
	p("")
	names := rad.PowerPropertyNames()
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	for _, n := range sorted {
		p("- `%s`", n)
	}
	return nil
}
