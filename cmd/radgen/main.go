// Command radgen synthesizes the Robotic Arm Dataset and writes it to disk:
// the command dataset as CSV and/or JSONL, the supervised-run index, and the
// power dataset of the supervised P2 runs as CSV.
//
// Usage:
//
//	radgen [-seed N] [-scale F] [-workers N] [-out DIR] [-format csv|jsonl|both] [-store DIR] [-dlq DIR]
//
// Generation is sharded across -workers goroutines; the output is
// byte-identical for every worker count (see internal/rad's canonical
// ordering). With -store, the campaign is additionally ingested into a
// persistent tracedb directory, ready for radquery and radreplay without
// regeneration; -dlq additionally folds a middlebox dead-letter directory
// (batches spilled when the trace sinks failed) into that store.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"rad"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "radgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("radgen", flag.ContinueOnError)
	seed := fs.Uint64("seed", 11, "campaign seed")
	scale := fs.Float64("scale", 1.0, "unsupervised-bulk scale (1.0 = full 128,785 objects)")
	workers := fs.Int("workers", 0, "generation worker goroutines (0 = GOMAXPROCS)")
	out := fs.String("out", "rad-dataset", "output directory")
	format := fs.String("format", "both", "command-dataset format: csv, jsonl, or both")
	storeDir := fs.String("store", "", "also ingest the campaign into this tracedb directory")
	dlqDir := fs.String("dlq", "", "dead-letter directory to re-ingest into -store (spills from a crashed or fault-injected middlebox)")
	compact := fs.Bool("compact", false, "compact the -store after ingest: merge small flush blocks into dense segments with tight indexes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "csv" && *format != "jsonl" && *format != "both" {
		return fmt.Errorf("unknown format %q", *format)
	}
	if *dlqDir != "" && *storeDir == "" {
		return fmt.Errorf("-dlq requires -store (dead letters re-ingest into the tracedb)")
	}

	fmt.Printf("generating RAD (seed=%d scale=%.2f workers=%d)...\n", *seed, *scale, *workers)
	ds, err := rad.GenerateDataset(rad.GenerateConfig{Seed: *seed, Scale: *scale, Workers: *workers})
	if err != nil {
		return fmt.Errorf("generate: %w", err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	records := ds.Store.All()
	if *format == "csv" || *format == "both" {
		if err := writeCommandCSV(filepath.Join(*out, "commands.csv"), records); err != nil {
			return err
		}
	}
	if *format == "jsonl" || *format == "both" {
		if err := writeCommandJSONL(filepath.Join(*out, "commands.jsonl"), records); err != nil {
			return err
		}
	}
	if *storeDir != "" {
		reingested, cs, err := writeTraceDB(*storeDir, *dlqDir, records, *compact)
		if err != nil {
			return err
		}
		fmt.Printf("ingested %d trace objects into tracedb at %s\n", len(records), *storeDir)
		if *dlqDir != "" {
			fmt.Printf("re-ingested %d dead-lettered records from %s\n", reingested, *dlqDir)
		}
		if *compact {
			fmt.Printf("compacted: %d segments -> %d, %d blocks -> %d, %d bytes -> %d\n",
				cs.SegmentsIn, cs.SegmentsOut, cs.BlocksIn, cs.BlocksOut, cs.BytesIn, cs.BytesOut)
		}
	}
	if err := writeRunIndex(filepath.Join(*out, "runs.csv"), ds.Runs); err != nil {
		return err
	}
	if err := writePower(*out, ds); err != nil {
		return err
	}
	if err := writeDescription(filepath.Join(*out, "RAD_Description.md"), ds, *seed, *scale); err != nil {
		return err
	}

	byDev := ds.Store.CountByDevice()
	fmt.Printf("wrote %d trace objects to %s\n", len(records), *out)
	for dev, n := range byDev {
		fmt.Printf("  %-8s %7d\n", dev, n)
	}
	fmt.Printf("supervised runs: %d (3 anomalous); power captures: %d P2 runs\n",
		len(ds.Runs), len(ds.PowerByRun))
	return nil
}

// writeTraceDB ingests the campaign into a persistent tracedb store through
// the Batcher flush boundary, so each flush lands as one on-disk block. With
// a dead-letter directory it then folds the spilled records of a crashed or
// fault-injected middlebox into the same store, returning how many it
// recovered; with compact set it finishes with a lifecycle compaction pass.
func writeTraceDB(dir, dlqDir string, records []rad.TraceRecord, compact bool) (int, rad.TraceCompactStats, error) {
	var cs rad.TraceCompactStats
	db, err := rad.OpenTraceDB(dir, rad.TraceDBOptions{})
	if err != nil {
		return 0, cs, err
	}
	b := rad.NewTraceBatcher(db, 4096)
	for _, r := range records {
		if err := b.Append(r); err != nil {
			db.Close()
			return 0, cs, fmt.Errorf("ingest tracedb: %w", err)
		}
	}
	if err := b.Flush(); err != nil {
		db.Close()
		return 0, cs, fmt.Errorf("ingest tracedb: %w", err)
	}
	reingested := 0
	if dlqDir != "" {
		dlq, err := rad.OpenDLQ(dlqDir)
		if err != nil {
			db.Close()
			return 0, cs, fmt.Errorf("open dlq: %w", err)
		}
		reingested, err = db.Reingest(dlq)
		if err != nil {
			db.Close()
			return 0, cs, fmt.Errorf("dlq re-ingest: %w", err)
		}
	}
	if compact {
		if cs, err = db.Compact(); err != nil {
			db.Close()
			return reingested, cs, fmt.Errorf("compact tracedb: %w", err)
		}
	}
	return reingested, cs, db.Close()
}

func writeCommandCSV(path string, records []rad.TraceRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := rad.NewCSVWriter(f)
	for _, r := range records {
		if err := w.Append(r); err != nil {
			return fmt.Errorf("write %s: %w", path, err)
		}
	}
	return w.Flush()
}

func writeCommandJSONL(path string, records []rad.TraceRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := rad.NewJSONLWriter(f)
	for _, r := range records {
		if err := w.Append(r); err != nil {
			return fmt.Errorf("write %s: %w", path, err)
		}
	}
	return w.Flush()
}

func writeRunIndex(path string, runs []rad.RunInfo) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "id,run,procedure,anomalous,commands,note"); err != nil {
		return err
	}
	for _, r := range runs {
		if _, err := fmt.Fprintf(f, "%d,%s,%s,%t,%d,%q\n",
			r.ID, r.Run, r.Procedure, r.Anomalous, r.Commands, r.Note); err != nil {
			return err
		}
	}
	return nil
}

// writePower writes one CSV per supervised P2 power capture with the full
// 122-property schema.
func writePower(dir string, ds *rad.Dataset) error {
	names := rad.PowerPropertyNames()
	for run, samples := range ds.PowerByRun {
		path := filepath.Join(dir, "power-"+run+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprint(f, "time"); err != nil {
			f.Close()
			return err
		}
		for _, n := range names {
			if _, err := fmt.Fprint(f, ",", n); err != nil {
				f.Close()
				return err
			}
		}
		fmt.Fprintln(f)
		for _, s := range samples {
			if _, err := fmt.Fprint(f, s.Time.UnixNano()); err != nil {
				f.Close()
				return err
			}
			for _, v := range s.Values {
				if _, err := fmt.Fprint(f, ",", strconv.FormatFloat(v, 'g', 8, 64)); err != nil {
					f.Close()
					return err
				}
			}
			fmt.Fprintln(f)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
