package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"rad"
)

// watchObs polls a radmiddlebox telemetry endpoint (-obs-addr) and
// pretty-prints each snapshot: counters and gauges as name/value pairs,
// histograms with count, mean, and interpolated tail quantiles. limit bounds
// the number of polls (0 = forever).
func watchObs(out io.Writer, addr string, interval time.Duration, limit int) error {
	url := fmt.Sprintf("http://%s/snapshot", addr)
	for n := 0; ; n++ {
		if n > 0 {
			time.Sleep(interval)
		}
		snap, err := fetchSnapshot(url)
		if err != nil {
			return err
		}
		printSnapshot(out, snap)
		if limit > 0 && n+1 >= limit {
			return nil
		}
	}
}

// spanFilter carries the -span-* flags into the /debug/spans query string.
type spanFilter struct {
	min     time.Duration
	tenant  string
	outcome string
	limit   int
}

// watchSpans fetches the middlebox's span flight recorder once
// (/debug/spans JSON, filtered server-side) and pretty-prints the recorder
// accounting, the per-tenant rollups, and each recent trace tree — the
// remote twin of the endpoint's format=text view.
func watchSpans(out io.Writer, addr string, f spanFilter) error {
	q := url.Values{}
	if f.min > 0 {
		q.Set("min", f.min.String())
	}
	if f.tenant != "" {
		q.Set("tenant", f.tenant)
	}
	if f.outcome != "" {
		q.Set("outcome", f.outcome)
	}
	if f.limit > 0 {
		q.Set("limit", fmt.Sprint(f.limit))
	}
	u := fmt.Sprintf("http://%s/debug/spans", addr)
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", u, resp.Status)
	}
	var page rad.SpanPageJSON
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return fmt.Errorf("decode spans: %w", err)
	}
	st := page.Stats
	fmt.Fprintf(out, "spans: %d buffered, %d recorded, %d evicted, %d sampled out\n",
		st.Buffered, st.Recorded, st.Evicted, st.Sampled)
	for _, r := range page.Rollups {
		tenant := r.Tenant
		if tenant == "" {
			tenant = "(untenanted)"
		}
		fmt.Fprintf(out, "tenant %-24s %d spans, %d errors, max %s\n",
			tenant, r.Spans, r.Errors, r.Max.Round(time.Microsecond))
	}
	if len(page.Roots) == 0 {
		fmt.Fprintln(out, "no trace trees match")
		return nil
	}
	rad.WriteSpanTrees(out, page.Roots)
	return nil
}

func fetchSnapshot(url string) (rad.MetricsSnapshot, error) {
	var snap rad.MetricsSnapshot
	resp, err := http.Get(url)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return snap, fmt.Errorf("decode snapshot: %w", err)
	}
	return snap, nil
}

// printSnapshot renders one poll. Zero-valued counters are elided so a quiet
// middlebox prints a short report, not its whole instrument catalog.
func printSnapshot(out io.Writer, snap rad.MetricsSnapshot) {
	fmt.Fprintf(out, "--- metrics @ %s ---\n", time.Now().Format("15:04:05"))
	for _, c := range snap.Counters {
		if c.Value == 0 {
			continue
		}
		fmt.Fprintf(out, "%-60s %d\n", metricKey(c.Name, c.Labels), c.Value)
	}
	for _, g := range snap.Gauges {
		if g.Value == 0 {
			continue
		}
		fmt.Fprintf(out, "%-60s %g\n", metricKey(g.Name, g.Labels), g.Value)
	}
	for _, h := range snap.Histograms {
		if h.Count == 0 {
			continue
		}
		mean := h.SumSeconds / float64(h.Count)
		fmt.Fprintf(out, "%-60s count=%d mean=%s p50=%s p90=%s p99=%s\n",
			metricKey(h.Name, h.Labels), h.Count, fmtSeconds(mean),
			fmtSeconds(h.Quantile(0.50)), fmtSeconds(h.Quantile(0.90)), fmtSeconds(h.Quantile(0.99)))
	}
}

// metricKey renders a Prometheus-style name{label="value",...} key with
// labels in sorted order.
func metricKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, labels[k])
	}
	return name + "{" + strings.Join(parts, ",") + "}"
}

// fmtSeconds renders a duration in seconds with a human-scaled unit.
func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
