// Command radwatch tails a middlebox's live trace stream — the "researchers
// watching the lab" client the dataset's serving layer exists for. It dials a
// radmiddlebox -stream listener, subscribes with server-side filters (the
// middlebox never sends events a watcher filtered out), and prints each
// record as it commits; with -snapshot, the whole persisted store replays
// first, then the live feed follows gap-free.
//
// Usage:
//
//	radwatch -addr HOST:PORT [filters] [-snapshot] [-power] [-reconnect] [-proto auto|v1|v2] [-format text|jsonl|csv] [-limit N]
//	radwatch -addr HOST:PORT -ids -train TRACE.jsonl [-order N] [-window N] [-alerts FILE]
//	radwatch -obs HOST:PORT [-interval DUR] [-limit N]
//	radwatch -obs HOST:PORT -spans [-span-min DUR] [-span-tenant ID] [-span-outcome S] [-limit N]
//
// -obs switches radwatch from tailing traces to polling a middlebox
// telemetry endpoint (radmiddlebox -obs-addr): each poll fetches /snapshot
// and pretty-prints the non-zero counters, gauges, and latency histograms
// (count, mean, p50/p90/p99). -limit bounds the number of polls.
//
// -spans (with -obs) fetches the middlebox's span flight recorder
// (/debug/spans) once and pretty-prints the recent request trace trees —
// client, wire, exec-attempt, store, and stream spans stitched per request
// — plus recorder accounting and per-tenant rollups. -span-min,
// -span-tenant, and -span-outcome filter server-side; -limit caps the
// number of trees.
//
// A server that vanishes mid-tail makes radwatch exit nonzero with a
// summary of what it saw (records, last seq, drops) — unless -reconnect is
// set, in which case it redials with jittered exponential backoff and
// resumes from the last delivered sequence number, deduplicated, across
// any number of server restarts.
//
// Filters: -device, -key (Device.Name), -proc, -run. Overflow behaviour is
// chosen with -policy drop-oldest|block and -buffer N; under drop-oldest the
// server sheds this watcher's oldest events when it falls behind and reports
// the exact loss ("... N dropped").
//
// -ids turns the watcher into an online intrusion detector: it trains the
// §V-B perplexity model on the benign runs in -train (grouped by run label),
// scores a sliding window over the live command stream, runs the middlebox
// rule set, and emits structured alerts (JSONL by default, CSV with -format
// csv) instead of raw records.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"rad"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "radwatch:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("radwatch", flag.ContinueOnError)
	addr := fs.String("addr", "", "stream listener address (required)")
	deviceF := fs.String("device", "", "filter: device name")
	key := fs.String("key", "", "filter: command type (Device.Name)")
	proc := fs.String("proc", "", "filter: procedure label")
	runLabel := fs.String("run", "", "filter: supervised run identifier")
	snapshot := fs.Bool("snapshot", false, "replay the persisted store before following live")
	withPower := fs.Bool("power", false, "include power-telemetry samples")
	policy := fs.String("policy", rad.StreamPolicyDropOldest, "overflow policy: drop-oldest or block")
	buffer := fs.Int("buffer", 0, "server-side ring capacity (0 = default)")
	format := fs.String("format", "text", "output: text, jsonl, or csv")
	limit := fs.Int("limit", 0, "stop after N events (0 = forever)")
	protoFlag := fs.String("proto", "auto", "wire protocol: auto (try v2 binary, fall back to v1 JSON), v1, or v2")
	obsAddr := fs.String("obs", "", "middlebox telemetry address (-obs-addr): poll /snapshot and pretty-print metrics instead of tailing the stream")
	interval := fs.Duration("interval", 2*time.Second, "obs: polling interval")
	spansMode := fs.Bool("spans", false, "obs: poll /debug/spans instead of /snapshot and pretty-print recent trace trees")
	spanMin := fs.Duration("span-min", 0, "spans: only trace trees whose root is at least this long")
	spanTenant := fs.String("span-tenant", "", "spans: only trace trees tagged with this tenant")
	spanOutcome := fs.String("span-outcome", "", "spans: only trace trees with this root outcome (ok, error, timeout, shed)")
	reconnect := fs.Bool("reconnect", false, "survive server restarts: redial with jittered exponential backoff and resume from the last delivered seq instead of exiting")
	reconnectSeed := fs.Uint64("reconnect-seed", 1, "reconnect: seed for the backoff-jitter PRNG (reproducible redial schedules)")
	idleTimeout := fs.Duration("idle-timeout", 0, "reconnect: treat a connection silent for this long as half-open and redial (pair with the server's heartbeat interval; 0 disables)")
	idsMode := fs.Bool("ids", false, "run the online IDS over the stream instead of printing records")
	train := fs.String("train", "", "ids: JSONL trace file of benign runs to train on")
	order := fs.Int("order", 2, "ids: n-gram model order")
	window := fs.Int("window", 0, "ids: sliding-window size in commands (0 = auto)")
	rules := fs.Bool("rules", false, "ids: also run the middlebox rule engine")
	if err := fs.Parse(args); err != nil {
		return err
	}
	proto, err := rad.ParseWireProto(*protoFlag)
	if err != nil {
		return err
	}
	if *obsAddr != "" {
		if *spansMode {
			return watchSpans(out, *obsAddr, spanFilter{
				min: *spanMin, tenant: *spanTenant, outcome: *spanOutcome, limit: *limit,
			})
		}
		return watchObs(out, *obsAddr, *interval, *limit)
	}
	if *spansMode {
		return fmt.Errorf("-spans requires -obs")
	}
	if *addr == "" {
		return fmt.Errorf("-addr is required")
	}

	req := rad.StreamSubscribe{
		Name:   "radwatch",
		Device: *deviceF, Key: *key, Procedure: *proc, Run: *runLabel,
		Snapshot: *snapshot, Power: *withPower,
		Policy: *policy, Buffer: *buffer,
	}
	dial := func() (eventSource, error) {
		if *reconnect {
			return rad.NewStreamResilientTail(rad.StreamResilientConfig{
				Addr:        *addr,
				Subscribe:   req,
				Proto:       proto,
				Seed:        *reconnectSeed,
				IdleTimeout: *idleTimeout,
			}), nil
		}
		return rad.DialStreamProto(*addr, req, proto)
	}
	if *idsMode {
		if *train == "" {
			return fmt.Errorf("-ids requires -train")
		}
		det, err := trainDetector(*train, *order)
		if err != nil {
			return err
		}
		return watchIDS(out, dial, det, *window, *rules, *format, *limit)
	}
	return watch(out, dial, *format, *limit, *reconnect)
}

// eventSource is what watch and watchIDS consume: a plain StreamClient or
// an auto-reconnecting StreamResilientTail, chosen by -reconnect.
type eventSource interface {
	Recv() (rad.StreamWireEvent, error)
	Close() error
}

// watch prints the raw event stream. Without -reconnect, a server that
// vanishes mid-tail is an error: the watcher exits nonzero with a summary
// of what it saw, so a supervising script knows the tail is incomplete.
func watch(out io.Writer, dial func() (eventSource, error), format string, limit int, reconnect bool) error {
	client, err := dial()
	if err != nil {
		return err
	}
	defer client.Close()

	print, flush, err := recordPrinter(out, format)
	if err != nil {
		return err
	}
	defer flush()

	n := 0
	var seen, lastSeq, drops uint64
	for {
		ev, err := client.Recv()
		if err != nil {
			if err == io.EOF && reconnect {
				// Only the resilient tail returns io.EOF here, and only
				// after Close: the watcher asked to stop, not the server.
				return nil
			}
			return fmt.Errorf("stream ended: %w (%d records seen, last seq %d, %d dropped)",
				err, seen, lastSeq, drops)
		}
		switch ev.Kind {
		case rad.StreamEventSnapshotEnd:
			if format == "text" {
				fmt.Fprintln(out, "--- snapshot complete, following live ---")
			}
			continue
		case rad.StreamEventResumeGap:
			if format == "text" {
				fmt.Fprintf(out, "--- resume gap: %d records lost to retention, re-snapshotting ---\n", ev.Gap)
			}
			continue
		case rad.StreamEventTrace:
			seen++
			lastSeq = ev.Record.Seq
			drops += ev.Dropped
			if err := print(*ev.Record, ev.Dropped); err != nil {
				return err
			}
		case rad.StreamEventPower:
			if format == "text" {
				s := ev.Sample
				fmt.Fprintf(out, "power %s  j0..j5 current %.3f %.3f %.3f %.3f %.3f %.3f\n",
					s.Time.Format("15:04:05.000"),
					s.JointCurrent(0), s.JointCurrent(1), s.JointCurrent(2),
					s.JointCurrent(3), s.JointCurrent(4), s.JointCurrent(5))
			}
		default:
			continue
		}
		n++
		if limit > 0 && n >= limit {
			return nil
		}
	}
}

// recordPrinter returns a per-record emit function for the chosen format.
func recordPrinter(out io.Writer, format string) (func(rad.TraceRecord, uint64) error, func() error, error) {
	switch format {
	case "text":
		return func(r rad.TraceRecord, dropped uint64) error {
			line := fmt.Sprintf("%6d  %s  %-28s run=%s", r.Seq, r.Time.Format("15:04:05.000"), r.Key(), orDash(r.Run))
			if r.Exception != "" {
				line += "  EXC " + r.Exception
			}
			if dropped > 0 {
				line += fmt.Sprintf("  [%d dropped]", dropped)
			}
			_, err := fmt.Fprintln(out, line)
			return err
		}, func() error { return nil }, nil
	case "jsonl":
		w := rad.NewJSONLWriter(out)
		return func(r rad.TraceRecord, _ uint64) error { return w.Append(r) }, w.Flush, nil
	case "csv":
		w := rad.NewCSVWriter(out)
		return func(r rad.TraceRecord, _ uint64) error { return w.Append(r) }, w.Flush, nil
	default:
		return nil, nil, fmt.Errorf("unknown -format %q", format)
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// trainDetector fits the perplexity model on the benign runs in a JSONL
// trace export, one training sequence per run label.
func trainDetector(path string, order int) (*rad.PerplexityDetector, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := rad.ReadTraceJSONL(f)
	if err != nil {
		return nil, err
	}
	return detectorFromRecords(recs, order)
}

// detectorFromRecords groups records into per-run command sequences
// (collection order) and trains an order-n detector on them.
func detectorFromRecords(recs []rad.TraceRecord, order int) (*rad.PerplexityDetector, error) {
	byRun := make(map[string][]string)
	var runOrder []string
	for _, r := range recs {
		run := r.Run
		if run == "" {
			run = "(unsupervised)"
		}
		if _, ok := byRun[run]; !ok {
			runOrder = append(runOrder, run)
		}
		byRun[run] = append(byRun[run], r.Name)
	}
	seqs := make([][]string, 0, len(runOrder))
	for _, run := range runOrder {
		seqs = append(seqs, byRun[run])
	}
	return rad.TrainPerplexityDetector(seqs, order)
}

// watchIDS runs the online detector over the stream and emits alerts.
func watchIDS(out io.Writer, dial func() (eventSource, error), det *rad.PerplexityDetector,
	window int, withRules bool, format string, limit int) error {
	emit, flush, err := alertPrinter(out, format)
	if err != nil {
		return err
	}
	defer flush()

	cfg := rad.StreamIDSConfig{Detector: det, Window: window, OnAlert: func(a rad.StreamAlert) {
		if err := emit(a); err != nil {
			fmt.Fprintln(os.Stderr, "radwatch: emit alert:", err)
		}
	}}
	if withRules {
		cfg.Rules = rad.NewRuleEngine(0)
	}
	ids, err := rad.NewStreamIDS(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "radwatch: online IDS armed, window threshold %.3f\n", ids.Threshold())

	client, err := dial()
	if err != nil {
		return err
	}
	defer client.Close()

	n := 0
	for {
		ev, err := client.Recv()
		if err != nil {
			if err == io.EOF {
				break
			}
			return err
		}
		if ev.Kind != rad.StreamEventTrace {
			continue
		}
		ids.Observe(*ev.Record)
		n++
		if limit > 0 && n >= limit {
			break
		}
	}
	fmt.Fprintf(os.Stderr, "radwatch: %d records observed, %d alerts\n", ids.Processed(), len(ids.Alerts()))
	return nil
}

// alertPrinter returns a per-alert emit function. Text mode shares the JSONL
// shape: alerts are structured records, not log lines.
func alertPrinter(out io.Writer, format string) (func(rad.StreamAlert) error, func() error, error) {
	switch format {
	case "text", "jsonl":
		enc := json.NewEncoder(out)
		return func(a rad.StreamAlert) error { return enc.Encode(a) }, func() error { return nil }, nil
	case "csv":
		w := csv.NewWriter(out)
		if err := w.Write([]string{"seq", "time", "source", "device", "key", "score", "threshold", "jenksBreak", "detail"}); err != nil {
			return nil, nil, err
		}
		return func(a rad.StreamAlert) error {
				return w.Write([]string{
					strconv.FormatUint(a.Seq, 10), a.Time.Format("2006-01-02T15:04:05.000Z07:00"),
					a.Source, a.Device, a.Key,
					strconv.FormatFloat(a.Score, 'f', 4, 64),
					strconv.FormatFloat(a.Threshold, 'f', 4, 64),
					strconv.FormatFloat(a.JenksBreak, 'f', 4, 64),
					a.Detail,
				})
			}, func() error {
				w.Flush()
				return w.Error()
			}, nil
	default:
		return nil, nil, fmt.Errorf("unknown -format %q", format)
	}
}
