package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rad"
)

// startStream serves a broker (with optional snapshot store) for the CLI to
// dial.
func startStream(t *testing.T, db *rad.TraceDB) (*rad.Broker, string) {
	t.Helper()
	broker := rad.NewBroker()
	srv := rad.NewStreamServer(broker, db)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); broker.Close() })
	return broker, addr
}

func publishUntil(t *testing.T, broker *rad.Broker, stop chan struct{}) {
	t.Helper()
	go func() {
		var seq uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			broker.Publish(rad.TraceRecord{Seq: seq, Device: "C9", Name: "MVNG",
				Time: time.Unix(int64(seq), 0), Run: "r1"})
			seq++
			time.Sleep(time.Millisecond)
		}
	}()
}

func TestWatchLiveTailText(t *testing.T) {
	broker, addr := startStream(t, nil)
	stop := make(chan struct{})
	defer close(stop)
	publishUntil(t, broker, stop)

	var out bytes.Buffer
	err := run([]string{"-addr", addr, "-limit", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("printed %d lines, want 3:\n%s", len(lines), out.String())
	}
	if !strings.Contains(lines[0], "C9.MVNG") {
		t.Errorf("line lacks command key: %q", lines[0])
	}
}

func TestWatchJSONLOutput(t *testing.T) {
	broker, addr := startStream(t, nil)
	stop := make(chan struct{})
	defer close(stop)
	publishUntil(t, broker, stop)

	var out bytes.Buffer
	if err := run([]string{"-addr", addr, "-limit", "2", "-format", "jsonl"}, &out); err != nil {
		t.Fatal(err)
	}
	recs, err := rad.ReadTraceJSONL(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d records, want 2", len(recs))
	}
}

func TestWatchSnapshotReplaysStore(t *testing.T) {
	dir := t.TempDir()
	db, err := rad.OpenTraceDB(dir, rad.TraceDBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 5; i++ {
		if err := db.Append(rad.TraceRecord{Device: "UR3e", Name: "movej"}); err != nil {
			t.Fatal(err)
		}
	}
	broker, addr := startStream(t, db)
	broker.AttachStore(db)

	var out bytes.Buffer
	if err := run([]string{"-addr", addr, "-snapshot", "-limit", "5", "-format", "jsonl"}, &out); err != nil {
		t.Fatal(err)
	}
	recs, err := rad.ReadTraceJSONL(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("snapshot replayed %d records, want 5", len(recs))
	}
}

func TestWatchIDSEmitsAlerts(t *testing.T) {
	// Train on a repetitive benign run, then stream commands the model has
	// never seen: the online IDS must emit perplexity alerts as JSONL.
	trainPath := filepath.Join(t.TempDir(), "train.jsonl")
	f, err := os.Create(trainPath)
	if err != nil {
		t.Fatal(err)
	}
	w := rad.NewJSONLWriter(f)
	pattern := []string{"HOME", "MVNG", "GRIP", "RLSE"}
	for i := 0; i < 80; i++ {
		if err := w.Append(rad.TraceRecord{Device: "C9", Name: pattern[i%len(pattern)], Run: "benign"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	broker, addr := startStream(t, nil)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		weird := []string{"ZAP", "QUX", "ZAP", "BLORT"}
		var seq uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			broker.Publish(rad.TraceRecord{Seq: seq, Device: "C9", Name: weird[seq%4]})
			seq++
			time.Sleep(time.Millisecond)
		}
	}()

	var out bytes.Buffer
	err = run([]string{"-addr", addr, "-ids", "-train", trainPath, "-window", "8", "-limit", "60"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("IDS mode emitted no alerts for a stream of unknown commands")
	}
	var alert rad.StreamAlert
	if err := json.Unmarshal([]byte(lines[0]), &alert); err != nil {
		t.Fatalf("alert is not JSON: %v\n%s", err, lines[0])
	}
	if alert.Source != "perplexity" || alert.Score <= alert.Threshold {
		t.Errorf("unexpected alert: %+v", alert)
	}
}

func TestWatchRequiresAddr(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("no -addr accepted")
	}
	if err := run([]string{"-addr", "x", "-ids"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-ids without -train accepted")
	}
}
