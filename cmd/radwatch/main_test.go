package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rad"
)

// startStream serves a broker (with optional snapshot store) for the CLI to
// dial.
func startStream(t *testing.T, db *rad.TraceDB) (*rad.Broker, string) {
	t.Helper()
	broker := rad.NewBroker()
	srv := rad.NewStreamServer(broker, db)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); broker.Close() })
	return broker, addr
}

func publishUntil(t *testing.T, broker *rad.Broker, stop chan struct{}) {
	t.Helper()
	go func() {
		var seq uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			broker.Publish(rad.TraceRecord{Seq: seq, Device: "C9", Name: "MVNG",
				Time: time.Unix(int64(seq), 0), Run: "r1"})
			seq++
			time.Sleep(time.Millisecond)
		}
	}()
}

func TestWatchLiveTailText(t *testing.T) {
	broker, addr := startStream(t, nil)
	stop := make(chan struct{})
	defer close(stop)
	publishUntil(t, broker, stop)

	var out bytes.Buffer
	err := run([]string{"-addr", addr, "-limit", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("printed %d lines, want 3:\n%s", len(lines), out.String())
	}
	if !strings.Contains(lines[0], "C9.MVNG") {
		t.Errorf("line lacks command key: %q", lines[0])
	}
}

func TestWatchJSONLOutput(t *testing.T) {
	broker, addr := startStream(t, nil)
	stop := make(chan struct{})
	defer close(stop)
	publishUntil(t, broker, stop)

	var out bytes.Buffer
	if err := run([]string{"-addr", addr, "-limit", "2", "-format", "jsonl"}, &out); err != nil {
		t.Fatal(err)
	}
	recs, err := rad.ReadTraceJSONL(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d records, want 2", len(recs))
	}
}

func TestWatchSnapshotReplaysStore(t *testing.T) {
	dir := t.TempDir()
	db, err := rad.OpenTraceDB(dir, rad.TraceDBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 5; i++ {
		if err := db.Append(rad.TraceRecord{Device: "UR3e", Name: "movej"}); err != nil {
			t.Fatal(err)
		}
	}
	broker, addr := startStream(t, db)
	broker.AttachStore(db)

	var out bytes.Buffer
	if err := run([]string{"-addr", addr, "-snapshot", "-limit", "5", "-format", "jsonl"}, &out); err != nil {
		t.Fatal(err)
	}
	recs, err := rad.ReadTraceJSONL(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("snapshot replayed %d records, want 5", len(recs))
	}
}

func TestWatchIDSEmitsAlerts(t *testing.T) {
	// Train on a repetitive benign run, then stream commands the model has
	// never seen: the online IDS must emit perplexity alerts as JSONL.
	trainPath := filepath.Join(t.TempDir(), "train.jsonl")
	f, err := os.Create(trainPath)
	if err != nil {
		t.Fatal(err)
	}
	w := rad.NewJSONLWriter(f)
	pattern := []string{"HOME", "MVNG", "GRIP", "RLSE"}
	for i := 0; i < 80; i++ {
		if err := w.Append(rad.TraceRecord{Device: "C9", Name: pattern[i%len(pattern)], Run: "benign"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	broker, addr := startStream(t, nil)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		weird := []string{"ZAP", "QUX", "ZAP", "BLORT"}
		var seq uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			broker.Publish(rad.TraceRecord{Seq: seq, Device: "C9", Name: weird[seq%4]})
			seq++
			time.Sleep(time.Millisecond)
		}
	}()

	var out bytes.Buffer
	err = run([]string{"-addr", addr, "-ids", "-train", trainPath, "-window", "8", "-limit", "60"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("IDS mode emitted no alerts for a stream of unknown commands")
	}
	var alert rad.StreamAlert
	if err := json.Unmarshal([]byte(lines[0]), &alert); err != nil {
		t.Fatalf("alert is not JSON: %v\n%s", err, lines[0])
	}
	if alert.Source != "perplexity" || alert.Score <= alert.Threshold {
		t.Errorf("unexpected alert: %+v", alert)
	}
}

func TestWatchRequiresAddr(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("no -addr accepted")
	}
	if err := run([]string{"-addr", "x", "-ids"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-ids without -train accepted")
	}
}

// TestWatchVanishedServerExitsNonzero: a server that dies mid-tail is an
// error, not a silent exit 0 — the summary line reports what the watcher
// saw so a supervising script knows the tail is incomplete.
func TestWatchVanishedServerExitsNonzero(t *testing.T) {
	broker := rad.NewBroker()
	srv := rad.NewStreamServer(broker, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	var out bytes.Buffer
	go func() { done <- run([]string{"-addr", addr}, &out) }()

	// Two records, then the server vanishes under the watcher.
	waitForPublished(t, broker, func() {
		broker.Publish(rad.TraceRecord{Seq: 0, Device: "C9", Name: "MVNG", Time: time.Unix(0, 0)})
		broker.Publish(rad.TraceRecord{Seq: 1, Device: "C9", Name: "MVNG", Time: time.Unix(1, 0)})
	})
	srv.Close()
	broker.Close()

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("watcher exited 0 after the server vanished mid-tail")
		}
		msg := err.Error()
		if !strings.Contains(msg, "stream ended") || !strings.Contains(msg, "records seen") {
			t.Fatalf("summary line missing from error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher never exited")
	}
}

// waitForPublished runs publish once the watcher's subscription is live,
// so the records cannot race the subscribe handshake.
func waitForPublished(t *testing.T, broker *rad.Broker, publish func()) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for len(broker.Stats()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watcher never subscribed")
		}
		time.Sleep(time.Millisecond)
	}
	publish()
	// Give the ring a moment to flush to the client before the kill.
	time.Sleep(50 * time.Millisecond)
}

// TestWatchReconnectSurvivesRestart: with -reconnect the watcher rides
// through a listener restart and keeps printing, resuming its tail.
func TestWatchReconnectSurvivesRestart(t *testing.T) {
	db, err := rad.OpenTraceDB(t.TempDir(), rad.TraceDBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	broker := rad.NewBroker()
	defer broker.Close()
	broker.AttachStore(db)
	srv := rad.NewStreamServer(broker, db)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		done <- run([]string{"-addr", addr, "-reconnect", "-snapshot", "-policy", "block", "-limit", "6"}, &out)
	}()

	appendN := func(n int) {
		for i := 0; i < n; i++ {
			if err := db.Append(rad.TraceRecord{Device: "C9", Name: "MVNG"}); err != nil {
				t.Fatal(err)
			}
		}
	}
	appendN(3)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv2 := rad.NewStreamServer(broker, db)
	if _, err := srv2.Start(addr); err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer srv2.Close()
	appendN(3)

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("reconnecting watcher failed: %v\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("reconnecting watcher never finished")
	}
	var traces int
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if strings.Contains(line, "C9.MVNG") {
			traces++
		}
	}
	if traces != 6 {
		t.Fatalf("watcher printed %d trace lines, want 6:\n%s", traces, out.String())
	}
}
