package main

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rad"
)

// TestObsWatchPollsSnapshot serves a registry over HTTP and checks the -obs
// mode fetches /snapshot and renders counters, gauges, and histogram
// quantiles, eliding zero-valued instruments.
func TestObsWatchPollsSnapshot(t *testing.T) {
	reg := rad.NewMetricsRegistry()
	reg.Counter("rad_middlebox_requests_total", "op", "exec").Add(7)
	reg.Counter("rad_middlebox_exec_shed_total") // stays zero: must be elided
	reg.Gauge("rad_tracedb_records").Set(42)
	h := reg.Histogram("rad_middlebox_exec_seconds", rad.DefaultLatencyBuckets,
		"device", "C9", "command", "MVNG")
	for i := 0; i < 10; i++ {
		h.Observe(250 * time.Millisecond)
	}

	srv := httptest.NewServer(rad.NewMetricsMux(reg))
	defer srv.Close()

	var sb strings.Builder
	if err := run([]string{"-obs", srv.Listener.Addr().String(), "-limit", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`rad_middlebox_requests_total{op="exec"}`,
		"rad_tracedb_records",
		`rad_middlebox_exec_seconds{command="MVNG",device="C9"}`,
		"count=10",
		"p99=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "rad_middlebox_exec_shed_total") {
		t.Errorf("zero counter not elided:\n%s", out)
	}
	// The rendered p50 interpolates inside the bucket containing 250ms.
	if !strings.Contains(out, "p50=") {
		t.Errorf("no p50 in output:\n%s", out)
	}
}

// TestObsWatchRejectsDeadEndpoint: a refused connection is a clean error,
// not a hang.
func TestObsWatchRejectsDeadEndpoint(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-obs", "127.0.0.1:1", "-limit", "1"}, &sb); err == nil {
		t.Fatal("expected error polling dead endpoint")
	}
}
