// Command radquery answers the analyses' query shapes straight from a
// persisted tracedb directory — no regeneration, no full-campaign rescan.
// It is the read side of the paper's MongoDB substitution: where RATracer's
// users query the document store for per-device or per-run slices, radquery
// serves the same slices from the embedded store's segments and indexes.
//
// Usage:
//
//	radquery -store DIR [-mode info|count|runs|scan] [filters]
//	radquery -follow -addr HOST:PORT [filters]
//
// Modes:
//
//	info   store summary: segments, records, time span, runs (default)
//	count  records per group (-by command|device|run|procedure)
//	runs   the distinct supervised run identifiers
//	scan   stream matching records (-format jsonl|csv), e.g. the per-run
//	       extraction feeding RQ1/Table I
//
// Filters (scan, and count for run/procedure groupings): -device, -key,
// -proc, -run, -from/-to (RFC 3339), -limit.
//
// -follow turns a scan into a live tail against a running middlebox's
// -stream listener: the middlebox replays every matching record already in
// its store (snapshot-then-follow, gap-free), then keeps streaming new ones
// as they commit — the same subscriber radwatch uses. -store is not needed;
// the middlebox reads its own.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"rad"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "radquery:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("radquery", flag.ContinueOnError)
	storeDir := fs.String("store", "", "tracedb directory (required)")
	mode := fs.String("mode", "info", "info, count, runs, or scan")
	by := fs.String("by", "command", "count grouping: command, device, run, or procedure")
	device := fs.String("device", "", "filter: device name")
	key := fs.String("key", "", "filter: command type (Device.Name)")
	proc := fs.String("proc", "", "filter: procedure label")
	runLabel := fs.String("run", "", "filter: supervised run identifier")
	from := fs.String("from", "", "filter: earliest Record.Time, RFC 3339")
	to := fs.String("to", "", "filter: latest Record.Time, RFC 3339")
	limit := fs.Int("limit", 0, "scan: stop after N records (0 = all)")
	format := fs.String("format", "jsonl", "scan output: jsonl or csv")
	follow := fs.Bool("follow", false, "live-tail a running middlebox instead of reading a store")
	addr := fs.String("addr", "", "follow: the middlebox's -stream listener address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *follow {
		if *addr == "" {
			return fmt.Errorf("-follow requires -addr")
		}
		return followScan(out, *addr, rad.StreamSubscribe{
			Name:   "radquery",
			Device: *device, Key: *key, Procedure: *proc, Run: *runLabel,
			Snapshot: true,
		}, *limit, *format)
	}
	if *storeDir == "" {
		return fmt.Errorf("-store is required")
	}

	q := rad.TraceQuery{Device: *device, Key: *key, Procedure: *proc, Run: *runLabel}
	var err error
	if q.From, err = parseTime(*from); err != nil {
		return fmt.Errorf("-from: %w", err)
	}
	if q.To, err = parseTime(*to); err != nil {
		return fmt.Errorf("-to: %w", err)
	}

	db, err := rad.OpenTraceDB(*storeDir, rad.TraceDBOptions{})
	if err != nil {
		return err
	}
	defer db.Close()

	switch *mode {
	case "info":
		return printInfo(out, db)
	case "count":
		return printCounts(out, db, *by, q)
	case "runs":
		for _, r := range db.Runs() {
			fmt.Fprintln(out, r)
		}
		return nil
	case "scan":
		return printScan(out, db, q, *limit, *format)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

func parseTime(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	return time.Parse(time.RFC3339, s)
}

func printInfo(out io.Writer, db *rad.TraceDB) error {
	fmt.Fprintf(out, "store:    %s\n", db.Dir())
	fmt.Fprintf(out, "segments: %d\n", db.Segments())
	fmt.Fprintf(out, "records:  %d\n", db.Len())
	if first, last, ok := db.Span(); ok {
		fmt.Fprintf(out, "span:     %s .. %s (%.1f days)\n",
			first.UTC().Format(time.RFC3339), last.UTC().Format(time.RFC3339),
			last.Sub(first).Hours()/24)
	}
	fmt.Fprintf(out, "runs:     %d supervised\n", len(db.Runs()))
	return nil
}

// printCounts prints "count group" lines, largest first. Command and device
// groupings come straight from the segment indexes; run and procedure
// groupings are indexed scans.
func printCounts(out io.Writer, db *rad.TraceDB, by string, q rad.TraceQuery) error {
	counts := make(map[string]int)
	switch by {
	case "command":
		counts = db.CountByCommand()
	case "device":
		counts = db.CountByDevice()
	case "run", "procedure":
		it := db.Scan(q)
		for it.Next() {
			r := it.Record()
			if by == "run" {
				if r.Run != "" {
					counts[r.Run]++
				}
			} else {
				counts[r.Procedure]++
			}
		}
		if err := it.Err(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -by %q", by)
	}
	groups := make([]string, 0, len(counts))
	for g := range counts {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool {
		if counts[groups[i]] != counts[groups[j]] {
			return counts[groups[i]] > counts[groups[j]]
		}
		return groups[i] < groups[j]
	})
	for _, g := range groups {
		fmt.Fprintf(out, "%8d  %s\n", counts[g], g)
	}
	return nil
}

// followScan is the -follow path: a snapshot-then-follow tail over the
// middlebox's stream listener, rendered with the same sinks as a local scan.
// It runs until the limit is reached or the middlebox closes the stream.
func followScan(out io.Writer, addr string, req rad.StreamSubscribe, limit int, format string) error {
	var sink interface {
		Append(rad.TraceRecord) error
		Flush() error
	}
	switch format {
	case "jsonl":
		sink = rad.NewJSONLWriter(out)
	case "csv":
		sink = rad.NewCSVWriter(out)
	default:
		return fmt.Errorf("unknown -format %q", format)
	}

	client, err := rad.DialStream(addr, req)
	if err != nil {
		return err
	}
	defer client.Close()

	n := 0
	for limit <= 0 || n < limit {
		ev, err := client.Recv()
		if err != nil {
			if err == io.EOF {
				break
			}
			return err
		}
		if ev.Kind != rad.StreamEventTrace {
			continue
		}
		if err := sink.Append(*ev.Record); err != nil {
			return err
		}
		n++
	}
	return sink.Flush()
}

func printScan(out io.Writer, db *rad.TraceDB, q rad.TraceQuery, limit int, format string) error {
	var sink interface {
		Append(rad.TraceRecord) error
		Flush() error
	}
	switch format {
	case "jsonl":
		sink = rad.NewJSONLWriter(out)
	case "csv":
		sink = rad.NewCSVWriter(out)
	default:
		return fmt.Errorf("unknown -format %q", format)
	}
	n := 0
	it := db.Scan(q)
	for it.Next() {
		if err := sink.Append(it.Record()); err != nil {
			return err
		}
		n++
		if limit > 0 && n >= limit {
			break
		}
	}
	if err := it.Err(); err != nil {
		return err
	}
	return sink.Flush()
}
