// Command radquery answers the analyses' query shapes straight from a
// persisted tracedb directory — no regeneration, no full-campaign rescan.
// It is the read side of the paper's MongoDB substitution: where RATracer's
// users query the document store for per-device or per-run slices, radquery
// serves the same slices from the embedded store's segments and indexes.
//
// Usage:
//
//	radquery -store DIR [-mode info|count|runs|scan|compact] [filters]
//	radquery -follow -addr HOST:PORT [filters]
//
// Modes:
//
//	info     store summary: segments, records, time span, runs, and the
//	         storage-lifecycle state — live vs reclaimable bytes, the
//	         block-size distribution, the retention horizon (default)
//	count    records per group (-by command|device|run|procedure)
//	runs     the distinct supervised run identifiers
//	scan     stream matching records (-format jsonl|csv), e.g. the per-run
//	         extraction feeding RQ1/Table I
//	compact  run the storage lifecycle by hand: compact fragmented
//	         segments, and apply -retain-age/-retain-bytes when set
//
// Filters (scan, and count for run/procedure groupings): -device, -key,
// -proc, -run, -from/-to (RFC 3339), -limit.
//
// -explain prints the selectivity planner's decision for a scan query —
// which posting list drives, how many blocks are read versus provably
// fully-covered — instead of executing it.
//
// -follow turns a scan into a live tail against a running middlebox's
// -stream listener: the middlebox replays every matching record already in
// its store (snapshot-then-follow, gap-free), then keeps streaming new ones
// as they commit — the same subscriber radwatch uses. -store is not needed;
// the middlebox reads its own.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"rad"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "radquery:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("radquery", flag.ContinueOnError)
	storeDir := fs.String("store", "", "tracedb directory (required)")
	mode := fs.String("mode", "info", "info, count, runs, scan, or compact")
	by := fs.String("by", "command", "count grouping: command, device, run, or procedure")
	device := fs.String("device", "", "filter: device name")
	key := fs.String("key", "", "filter: command type (Device.Name)")
	proc := fs.String("proc", "", "filter: procedure label")
	runLabel := fs.String("run", "", "filter: supervised run identifier")
	from := fs.String("from", "", "filter: earliest Record.Time, RFC 3339")
	to := fs.String("to", "", "filter: latest Record.Time, RFC 3339")
	limit := fs.Int("limit", 0, "scan: stop after N records (0 = all)")
	format := fs.String("format", "jsonl", "scan output: jsonl or csv")
	explain := fs.Bool("explain", false, "scan: print the query plan instead of the records")
	retainAge := fs.Duration("retain-age", 0, "compact: also retire sealed segments older than this")
	retainBytes := fs.Int64("retain-bytes", 0, "compact: also retire oldest sealed segments past this byte budget")
	follow := fs.Bool("follow", false, "live-tail a running middlebox instead of reading a store")
	addr := fs.String("addr", "", "follow: the middlebox's -stream listener address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *follow {
		if *addr == "" {
			return fmt.Errorf("-follow requires -addr")
		}
		return followScan(out, *addr, rad.StreamSubscribe{
			Name:   "radquery",
			Device: *device, Key: *key, Procedure: *proc, Run: *runLabel,
			Snapshot: true,
		}, *limit, *format)
	}
	if *storeDir == "" {
		return fmt.Errorf("-store is required")
	}

	q := rad.TraceQuery{Device: *device, Key: *key, Procedure: *proc, Run: *runLabel}
	var err error
	if q.From, err = parseTime(*from); err != nil {
		return fmt.Errorf("-from: %w", err)
	}
	if q.To, err = parseTime(*to); err != nil {
		return fmt.Errorf("-to: %w", err)
	}

	db, err := rad.OpenTraceDB(*storeDir, rad.TraceDBOptions{
		Lifecycle: rad.TraceLifecycleOptions{RetainMaxAge: *retainAge, RetainMaxBytes: *retainBytes},
	})
	if err != nil {
		return err
	}
	defer db.Close()

	switch *mode {
	case "info":
		return printInfo(out, db)
	case "count":
		return printCounts(out, db, *by, q)
	case "runs":
		for _, r := range db.Runs() {
			fmt.Fprintln(out, r)
		}
		return nil
	case "scan":
		if *explain {
			return printExplain(out, db, q)
		}
		return printScan(out, db, q, *limit, *format)
	case "compact":
		return runCompact(out, db, *retainAge > 0 || *retainBytes > 0)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

// runCompact is -mode compact: the manual lifecycle trigger. Retention (when
// a policy flag is set) runs first to free whole segments, then compaction
// densifies what remains.
func runCompact(out io.Writer, db *rad.TraceDB, retain bool) error {
	if retain {
		rs, err := db.Retain()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "retained: %d segments retired, %d records dropped, %d bytes reclaimed\n",
			rs.SegmentsRetired, rs.RecordsDropped, rs.BytesReclaimed)
	}
	cs, err := db.Compact()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "compacted: %d steps, %d segments -> %d, %d blocks -> %d, %d records, %d bytes -> %d\n",
		cs.Compactions, cs.SegmentsIn, cs.SegmentsOut,
		cs.BlocksIn, cs.BlocksOut, cs.Records, cs.BytesIn, cs.BytesOut)
	return nil
}

// printExplain renders the selectivity planner's decision for q.
func printExplain(out io.Writer, db *rad.TraceDB, q rad.TraceQuery) error {
	pl := db.Explain(q)
	fmt.Fprintf(out, "segments:  %d planned, %d pruned\n", pl.Segments-pl.SegmentsPruned, pl.SegmentsPruned)
	for _, field := range []string{"device", "key", "run", "procedure", "scan"} {
		if n := pl.Drivers[field]; n > 0 {
			fmt.Fprintf(out, "driver:    %s (%d segments)\n", field, n)
		}
	}
	for _, field := range []string{"device", "key", "run", "procedure"} {
		if n, ok := pl.FilterBlocks[field]; ok {
			fmt.Fprintf(out, "filter:    %-9s -> %d posting-list blocks\n", field, n)
		}
	}
	fmt.Fprintf(out, "blocks:    %d candidates of %d total, %d fully covered (no per-record re-filter)\n",
		pl.CandidateBlocks, pl.TotalBlocks, pl.CoveredBlocks)
	fmt.Fprintf(out, "records:   <= %d from blocks, %d staged\n", pl.CandidateRecords, pl.StagedTail)
	return nil
}

func parseTime(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	return time.Parse(time.RFC3339, s)
}

func printInfo(out io.Writer, db *rad.TraceDB) error {
	fmt.Fprintf(out, "store:    %s\n", db.Dir())
	fmt.Fprintf(out, "segments: %d\n", db.Segments())
	fmt.Fprintf(out, "records:  %d\n", db.Len())
	if first, last, ok := db.Span(); ok {
		fmt.Fprintf(out, "span:     %s .. %s (%.1f days)\n",
			first.UTC().Format(time.RFC3339), last.UTC().Format(time.RFC3339),
			last.Sub(first).Hours()/24)
	}
	fmt.Fprintf(out, "runs:     %d supervised\n", len(db.Runs()))
	lc := db.Lifecycle()
	fmt.Fprintf(out, "bytes:    %d live, %d reclaimable (%d retired awaiting readers, %d past retention)\n",
		lc.LiveBytes, lc.RetiredBytes+lc.ExpiredBytes, lc.RetiredBytes, lc.ExpiredBytes)
	if lc.Blocks.Blocks > 0 {
		fmt.Fprintf(out, "blocks:   %d (payload min %d / avg %d / max %d bytes; %d fragmented)\n",
			lc.Blocks.Blocks, lc.Blocks.MinBytes, lc.Blocks.AvgBytes, lc.Blocks.MaxBytes, lc.Blocks.Fragmented)
	}
	if lc.CompactedSegments > 0 || lc.Compactions > 0 {
		fmt.Fprintf(out, "compact:  %d compacted segments live; %d compactions, %d blocks merged, %d bytes reclaimed\n",
			lc.CompactedSegments, lc.Compactions, lc.BlocksMerged, lc.BytesReclaimed)
	}
	if !lc.RetentionHorizon.IsZero() {
		fmt.Fprintf(out, "retain:   horizon %s; %d segments retired, %d records dropped so far\n",
			lc.RetentionHorizon.UTC().Format(time.RFC3339), lc.SegmentsRetired, lc.RecordsDropped)
	}
	return nil
}

// printCounts prints "count group" lines, largest first. Command and device
// groupings come straight from the segment indexes; run and procedure
// groupings are indexed scans.
func printCounts(out io.Writer, db *rad.TraceDB, by string, q rad.TraceQuery) error {
	counts := make(map[string]int)
	switch by {
	case "command":
		counts = db.CountByCommand()
	case "device":
		counts = db.CountByDevice()
	case "run", "procedure":
		it := db.Scan(q)
		for it.Next() {
			r := it.Record()
			if by == "run" {
				if r.Run != "" {
					counts[r.Run]++
				}
			} else {
				counts[r.Procedure]++
			}
		}
		if err := it.Err(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -by %q", by)
	}
	groups := make([]string, 0, len(counts))
	for g := range counts {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool {
		if counts[groups[i]] != counts[groups[j]] {
			return counts[groups[i]] > counts[groups[j]]
		}
		return groups[i] < groups[j]
	})
	for _, g := range groups {
		fmt.Fprintf(out, "%8d  %s\n", counts[g], g)
	}
	return nil
}

// followScan is the -follow path: a snapshot-then-follow tail over the
// middlebox's stream listener, rendered with the same sinks as a local scan.
// It runs until the limit is reached or the middlebox closes the stream.
func followScan(out io.Writer, addr string, req rad.StreamSubscribe, limit int, format string) error {
	var sink interface {
		Append(rad.TraceRecord) error
		Flush() error
	}
	switch format {
	case "jsonl":
		sink = rad.NewJSONLWriter(out)
	case "csv":
		sink = rad.NewCSVWriter(out)
	default:
		return fmt.Errorf("unknown -format %q", format)
	}

	client, err := rad.DialStream(addr, req)
	if err != nil {
		return err
	}
	defer client.Close()

	n := 0
	for limit <= 0 || n < limit {
		ev, err := client.Recv()
		if err != nil {
			if err == io.EOF {
				break
			}
			return err
		}
		if ev.Kind != rad.StreamEventTrace {
			continue
		}
		if err := sink.Append(*ev.Record); err != nil {
			return err
		}
		n++
	}
	return sink.Flush()
}

func printScan(out io.Writer, db *rad.TraceDB, q rad.TraceQuery, limit int, format string) error {
	var sink interface {
		Append(rad.TraceRecord) error
		Flush() error
	}
	switch format {
	case "jsonl":
		sink = rad.NewJSONLWriter(out)
	case "csv":
		sink = rad.NewCSVWriter(out)
	default:
		return fmt.Errorf("unknown -format %q", format)
	}
	n := 0
	it := db.Scan(q)
	defer it.Close() // a -limit break abandons the snapshot early
	for it.Next() {
		if err := sink.Append(it.Record()); err != nil {
			return err
		}
		n++
		if limit > 0 && n >= limit {
			break
		}
	}
	if err := it.Err(); err != nil {
		return err
	}
	return sink.Flush()
}
