package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"rad"
)

// buildRecords returns the small hand-made campaign the CLI tests query.
func buildRecords() []rad.TraceRecord {
	base := time.Date(2022, 3, 1, 9, 0, 0, 0, time.UTC)
	var recs []rad.TraceRecord
	for i := 0; i < 40; i++ {
		r := rad.TraceRecord{
			Time: base.Add(time.Duration(i) * time.Minute), Device: "C9", Name: "MVNG",
			Procedure: rad.UnknownProcedure, Mode: "REMOTE", Response: "ok",
		}
		r.EndTime = r.Time.Add(3 * time.Millisecond)
		if i%4 == 0 {
			r.Device, r.Name = "Tecan", "Q"
		}
		if i >= 30 {
			r.Run, r.Procedure = "run-7", rad.ProcedureP1
		}
		recs = append(recs, r)
	}
	return recs
}

// buildStore persists the campaign and returns its directory.
func buildStore(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	db, err := rad.OpenTraceDB(dir, rad.TraceDBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AppendBatch(buildRecords()); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestQueryInfoCountRunsScan(t *testing.T) {
	dir := buildStore(t)

	var out bytes.Buffer
	if err := run([]string{"-store", dir}, &out); err != nil {
		t.Fatal(err)
	}
	info := out.String()
	for _, want := range []string{"records:  40", "segments: 1", "runs:     1 supervised"} {
		if !strings.Contains(info, want) {
			t.Errorf("info output missing %q:\n%s", want, info)
		}
	}

	out.Reset()
	if err := run([]string{"-store", dir, "-mode", "count", "-by", "command"}, &out); err != nil {
		t.Fatal(err)
	}
	counts := out.String()
	if !strings.Contains(counts, "30  C9.MVNG") || !strings.Contains(counts, "10  Tecan.Q") {
		t.Errorf("count output wrong:\n%s", counts)
	}

	out.Reset()
	if err := run([]string{"-store", dir, "-mode", "runs"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "run-7" {
		t.Errorf("runs output = %q", out.String())
	}

	// Per-run extraction (the RQ1/Table I shape) as JSONL.
	out.Reset()
	if err := run([]string{"-store", dir, "-mode", "scan", "-run", "run-7"}, &out); err != nil {
		t.Fatal(err)
	}
	got, err := rad.ReadTraceJSONL(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("run-7 scan returned %d records, want 10", len(got))
	}
	for _, r := range got {
		if r.Run != "run-7" {
			t.Errorf("record %d leaked into run scan: %+v", r.Seq, r)
		}
	}

	// Time-windowed CSV scan with a limit.
	out.Reset()
	if err := run([]string{
		"-store", dir, "-mode", "scan", "-format", "csv",
		"-from", "2022-03-01T09:10:00Z", "-to", "2022-03-01T09:20:00Z", "-limit", "5",
	}, &out); err != nil {
		t.Fatal(err)
	}
	fromCSV, err := rad.ReadTraceCSV(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromCSV) != 5 {
		t.Fatalf("windowed scan returned %d records, want 5 (limit)", len(fromCSV))
	}
}

// TestQueryScanGoldenFormats pins the scan export bytes — header and
// column order for CSV, field order and encoding for JSONL — so a
// compaction-era record rewrite (or any future codec change) can never
// reorder fields silently: downstream IDS pipelines parse these exports
// positionally. The store is built twice, once as ingested and once
// compacted, and both must render the identical golden bytes.
func TestQueryScanGoldenFormats(t *testing.T) {
	const goldenCSV = "seq,time,end_time,device,name,args,response,exception,procedure,run,mode\n" +
		"0,2022-03-01T09:00:00Z,2022-03-01T09:00:00.003Z,Tecan,Q,,ok,,unknown procedure,,REMOTE\n" +
		"1,2022-03-01T09:01:00Z,2022-03-01T09:01:00.003Z,C9,MVNG,,ok,,unknown procedure,,REMOTE\n"
	const goldenJSONL = `{"seq":0,"time":"2022-03-01T09:00:00Z","endTime":"2022-03-01T09:00:00.003Z",` +
		`"device":"Tecan","name":"Q","response":"ok","procedure":"unknown procedure","mode":"REMOTE"}` + "\n" +
		`{"seq":1,"time":"2022-03-01T09:01:00Z","endTime":"2022-03-01T09:01:00.003Z",` +
		`"device":"C9","name":"MVNG","response":"ok","procedure":"unknown procedure","mode":"REMOTE"}` + "\n"

	// Chatty ingestion over tiny segments: the store is left as small-flush
	// debris so the compaction leg below has real sources to rewrite.
	dir := t.TempDir()
	opts := rad.TraceDBOptions{SegmentBytes: 1 << 10}
	db, err := rad.OpenTraceDB(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	recs := buildRecords()
	for i := 0; i < len(recs); i += 3 {
		j := min(i+3, len(recs))
		if err := db.AppendBatch(recs[i:j]); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	check := func(label string) {
		t.Helper()
		var out bytes.Buffer
		if err := run([]string{"-store", dir, "-mode", "scan", "-format", "csv", "-limit", "2"}, &out); err != nil {
			t.Fatal(err)
		}
		if out.String() != goldenCSV {
			t.Errorf("%s csv scan output changed:\n got: %q\nwant: %q", label, out.String(), goldenCSV)
		}
		out.Reset()
		if err := run([]string{"-store", dir, "-mode", "scan", "-format", "jsonl", "-limit", "2"}, &out); err != nil {
			t.Fatal(err)
		}
		if out.String() != goldenJSONL {
			t.Errorf("%s jsonl scan output changed:\n got: %q\nwant: %q", label, out.String(), goldenJSONL)
		}
	}
	check("ingested")

	// Rewrite the store through the compactor and require byte-identical
	// exports from the rebuilt blocks.
	db, err = rad.OpenTraceDB(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := db.Compact()
	if err != nil {
		db.Close()
		t.Fatal(err)
	}
	if stats.Compactions == 0 {
		db.Close()
		t.Fatal("compaction found nothing to rewrite; golden check would be vacuous")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	check("compacted")
}

func TestQueryCountByRunAndProcedure(t *testing.T) {
	dir := buildStore(t)
	var out bytes.Buffer
	if err := run([]string{"-store", dir, "-mode", "count", "-by", "run"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "10  run-7") {
		t.Errorf("count -by run wrong:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-store", dir, "-mode", "count", "-by", "procedure"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "30  "+rad.UnknownProcedure) ||
		!strings.Contains(out.String(), "10  "+rad.ProcedureP1) {
		t.Errorf("count -by procedure wrong:\n%s", out.String())
	}
}

// TestQueryFollowTailsStream runs the -follow path against a live stream
// listener: the persisted store replays as a snapshot, then live commits
// keep arriving, all through the same scan formats.
func TestQueryFollowTailsStream(t *testing.T) {
	dir := buildStore(t)
	db, err := rad.OpenTraceDB(dir, rad.TraceDBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	broker := rad.NewBroker()
	defer broker.Close()
	broker.AttachStore(db)
	srv := rad.NewStreamServer(broker, db)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Keep committing fresh records so the tail has a live side to follow
	// past the 40-record snapshot.
	stopAppend := make(chan struct{})
	defer close(stopAppend)
	go func() {
		for {
			select {
			case <-stopAppend:
				return
			default:
			}
			_ = db.Append(rad.TraceRecord{Device: "C9", Name: "LIVE", Response: "ok"})
			time.Sleep(time.Millisecond)
		}
	}()

	var out bytes.Buffer
	if err := run([]string{"-follow", "-addr", addr, "-limit", "45"}, &out); err != nil {
		t.Fatal(err)
	}
	got, err := rad.ReadTraceJSONL(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 45 {
		t.Fatalf("follow returned %d records, want 45", len(got))
	}
	// The first 40 are the snapshot in sequence order; the rest are live.
	for i := 0; i < 40; i++ {
		if got[i].Seq != uint64(i) {
			t.Fatalf("snapshot record %d has seq %d", i, got[i].Seq)
		}
	}
	for _, r := range got[40:] {
		if r.Name != "LIVE" || r.Seq < 40 {
			t.Errorf("live record out of place: %+v", r)
		}
	}

	// Server-side filter pushdown applies to both snapshot and live sides.
	out.Reset()
	if err := run([]string{"-follow", "-addr", addr, "-run", "run-7", "-limit", "10"}, &out); err != nil {
		t.Fatal(err)
	}
	filtered, err := rad.ReadTraceJSONL(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered) != 10 {
		t.Fatalf("filtered follow returned %d records, want 10", len(filtered))
	}
	for _, r := range filtered {
		if r.Run != "run-7" {
			t.Errorf("record leaked through run filter: %+v", r)
		}
	}
}

func TestQueryRejectsBadFlags(t *testing.T) {
	dir := buildStore(t)
	for name, args := range map[string][]string{
		"no-store":       {"-mode", "info"},
		"follow-no-addr": {"-follow"},
		"bad-mode":       {"-store", dir, "-mode", "explode"},
		"bad-by":         {"-store", dir, "-mode", "count", "-by", "color"},
		"bad-format":     {"-store", dir, "-mode", "scan", "-format", "parquet"},
		"bad-from":       {"-store", dir, "-from", "yesterday"},
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("%s: accepted %v", name, args)
		}
	}
}
