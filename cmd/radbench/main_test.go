package main

import "testing"

// TestRadbenchSubsets exercises the CLI driver over quick experiment
// subsets (the full run is exercised by the bench suite and EXPERIMENTS.md).
func TestRadbenchSubsets(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a dataset")
	}
	for _, only := range []string{"fig5a", "fig5b,fig6,table1", "fig7c,fig7d"} {
		if err := run([]string{"-scale", "0.02", "-only", only}); err != nil {
			t.Fatalf("-only %s: %v", only, err)
		}
	}
}

func TestRadbenchRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}
