package main

import (
	"fmt"
	"strings"

	"rad"
)

// renderFig7a formats the five-segment experiment: sparklines, repeatability,
// and the pairwise distinctness verdicts.
func renderFig7a(res rad.Fig7aResult) string {
	var b strings.Builder
	b.WriteString(rad.RenderSeries("Fig. 7(a) — UR3e joint-1 current per move_joints segment", res.Segments))
	b.WriteString("repeatability (Pearson r, run 1 vs run 2):")
	for i, r := range res.RepeatCorrelation {
		fmt.Fprintf(&b, "  L%d-L%d %.4f", i, i+1, r)
	}
	b.WriteString("\npairwise distinct (shape/duration/amplitude): ")
	all := true
	for i := range res.Distinct {
		for j := range res.Distinct[i] {
			if i != j && !res.Distinct[i][j] {
				all = false
			}
		}
	}
	fmt.Fprintf(&b, "%v\n\n", all)
	return b.String()
}

func renderFig7b(res rad.Fig7bResult) string {
	var b strings.Builder
	b.WriteString(rad.RenderSeries("Fig. 7(b) — vial-transfer current per solid (trajectory identical)", res.Solids))
	labels := make([]string, len(res.Solids))
	for i, s := range res.Solids {
		labels[i] = s.Label
	}
	b.WriteString(rad.RenderCorrelationMatrix("pairwise Pearson r (paper: > 0.97):", labels, res.Correlations))
	b.WriteString("\n")
	return b.String()
}

func renderFig7c(res rad.Fig7cResult) string {
	var b strings.Builder
	b.WriteString(rad.RenderSeries("Fig. 7(c) — current vs commanded velocity (same endpoints)", res.Velocities))
	b.WriteString("peak amplitude:")
	for i, s := range res.Velocities {
		fmt.Fprintf(&b, "  %s %.3f", s.Label, res.PeakAmplitude[i])
	}
	b.WriteString("\n\n")
	return b.String()
}

func renderFig7d(res rad.Fig7dResult) string {
	var b strings.Builder
	b.WriteString(rad.RenderSeries("Fig. 7(d) — current vs payload weight (same trajectory)", res.Weights))
	b.WriteString("peak amplitude:")
	for i, s := range res.Weights {
		fmt.Fprintf(&b, "  %s %.3f", s.Label, res.PeakAmplitude[i])
	}
	b.WriteString("\n\n")
	return b.String()
}
