// Command radbench regenerates every table and figure in the paper's
// evaluation and prints them in the paper's layout.
//
// Usage:
//
//	radbench [-seed N] [-scale F] [-only fig4,fig5a,fig5b,fig6,table1,fig7a,fig7b,fig7c,fig7d]
//
// fig4 runs in real time over loopback TCP (≈ a minute at full size); the
// remaining experiments run on a synthesized dataset in virtual time.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rad"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "radbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("radbench", flag.ContinueOnError)
	seed := fs.Uint64("seed", 11, "campaign seed (drives every random stream)")
	scale := fs.Float64("scale", 1.0, "unsupervised-bulk scale (1.0 = the full 128,785-object dataset)")
	fromFile := fs.String("from", "", "analyze an exported commands.jsonl instead of generating (fig5a/fig5b/fig6/table1/rq1/ablations)")
	only := fs.String("only", "", "comma-separated experiment subset (default: all)")
	fig4Seqs := fs.Int("fig4-sequences", 6, "fig4: joystick button-press sequences per mode")
	fig4Cmds := fs.Int("fig4-commands", 30, "fig4: ARM commands per sequence")
	if err := fs.Parse(args); err != nil {
		return err
	}

	want := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	var ds *rad.Dataset
	needDataset := sel("fig5a") || sel("fig5b") || sel("fig6") || sel("table1")
	if needDataset {
		var err error
		if *fromFile != "" {
			fmt.Printf("loading RAD from %s...\n", *fromFile)
			ds, err = loadDataset(*fromFile)
		} else {
			fmt.Printf("generating RAD (seed=%d scale=%.2f)...\n", *seed, *scale)
			ds, err = rad.GenerateDataset(rad.GenerateConfig{Seed: *seed, Scale: *scale})
		}
		if err != nil {
			return fmt.Errorf("dataset: %w", err)
		}
		fmt.Printf("dataset: %d trace objects, %d supervised runs\n\n", ds.Store.Len(), len(ds.Runs))
	}

	if sel("fig4") {
		fmt.Println("running Fig. 4 latency experiment over loopback TCP (real time)...")
		res, err := rad.Fig4ResponseTime(rad.Fig4Config{
			Sequences: *fig4Seqs, CommandsPerSequence: *fig4Cmds, Seed: *seed,
		})
		if err != nil {
			return fmt.Errorf("fig4: %w", err)
		}
		fmt.Println(rad.RenderFig4(res))
	}
	if sel("fig5a") {
		fmt.Println(rad.RenderFig5a(rad.Fig5aCommandDistribution(ds)))
	}
	if sel("fig5b") {
		fmt.Println(rad.RenderFig5b(rad.Fig5bTopNGrams(ds, nil, 10)))
	}
	if sel("fig6") {
		fmt.Println(rad.RenderFig6(rad.Fig6SimilarityMatrix(ds)))
	}
	if sel("table1") {
		fmt.Println(rad.RenderTableI(rad.TableIPerplexityIDS(ds, rad.TableIConfig{})))
	}
	if sel("fig7a") {
		res, err := rad.Fig7aSegments(*seed)
		if err != nil {
			return fmt.Errorf("fig7a: %w", err)
		}
		fmt.Print(renderFig7a(res))
	}
	if sel("fig7b") {
		res, err := rad.Fig7bSolids(*seed)
		if err != nil {
			return fmt.Errorf("fig7b: %w", err)
		}
		fmt.Print(renderFig7b(res))
	}
	if sel("fig7c") {
		res, err := rad.Fig7cVelocities(*seed)
		if err != nil {
			return fmt.Errorf("fig7c: %w", err)
		}
		fmt.Print(renderFig7c(res))
	}
	if sel("fig7d") {
		res, err := rad.Fig7dWeights(*seed)
		if err != nil {
			return fmt.Errorf("fig7d: %w", err)
		}
		fmt.Print(renderFig7d(res))
	}
	if sel("ablations") && len(want) > 0 {
		fmt.Println("running ablation studies (smoothing, Jenks space, streaming window)...")
		if ds == nil {
			var err error
			ds, err = rad.GenerateDataset(rad.GenerateConfig{Seed: *seed, Scale: *scale})
			if err != nil {
				return fmt.Errorf("generate dataset: %w", err)
			}
		}
		sm := rad.AblationSmoothing(ds, nil)
		js := rad.AblationJenksSpace(ds)
		wr, err := rad.AblationStreamWindow(ds, nil)
		if err != nil {
			return fmt.Errorf("ablations: %w", err)
		}
		fmt.Println(rad.RenderAblations(sm, js, wr))
	}
	if sel("rq1") && len(want) > 0 {
		if ds == nil {
			var err error
			ds, err = rad.GenerateDataset(rad.GenerateConfig{Seed: *seed, Scale: *scale})
			if err != nil {
				return fmt.Errorf("generate dataset: %w", err)
			}
		}
		res, err := rad.RQ1Classification(ds)
		if err != nil {
			return fmt.Errorf("rq1: %w", err)
		}
		fmt.Println(rad.RenderRQ1(res))
	}
	if sel("powerids") && len(want) > 0 {
		fmt.Println("running the power side-channel IDS benchmark (RQ3)...")
		rows, err := rad.PowerIDSBenchmark(*seed)
		if err != nil {
			return fmt.Errorf("power ids: %w", err)
		}
		fmt.Println(rad.RenderPowerIDS(rows))
	}
	if sel("attacks") && len(want) > 0 {
		fmt.Println("running the attack benchmark (6 attack families vs. the P2 workload)...")
		rows, err := rad.AttackBenchmark(*seed, 3)
		if err != nil {
			return fmt.Errorf("attack benchmark: %w", err)
		}
		fmt.Println(rad.RenderAttackBench(rows))
	}
	return nil
}

// loadDataset reads an exported commands.jsonl and rebuilds the Dataset view.
func loadDataset(path string) (*rad.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	records, err := rad.ReadTraceJSONL(f)
	if err != nil {
		return nil, err
	}
	return rad.DatasetFromRecords(records)
}
