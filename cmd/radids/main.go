// Command radids trains the paper's IDS prototypes on a synthesized RAD and
// reports how they fare: the batch perplexity classifier of §V-B (Table I's
// protocol), the streaming variant, the TF-IDF procedure classifier of §V-A
// (RQ1), and the middlebox rule engine.
//
// Usage:
//
//	radids [-seed N] [-scale F] [-order N] [-window N]
package main

import (
	"flag"
	"fmt"
	"os"

	"rad"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "radids:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("radids", flag.ContinueOnError)
	seed := fs.Uint64("seed", 11, "campaign seed")
	scale := fs.Float64("scale", 0.2, "dataset scale (supervised runs are scale-invariant)")
	order := fs.Int("order", 3, "n-gram order for the perplexity IDS")
	window := fs.Int("window", 32, "streaming window size (commands)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	fmt.Printf("generating RAD (seed=%d scale=%.2f)...\n", *seed, *scale)
	ds, err := rad.GenerateDataset(rad.GenerateConfig{Seed: *seed, Scale: *scale})
	if err != nil {
		return err
	}
	seqs, anomalous := ds.SupervisedSequences()

	// 1. Batch classification, the Table I protocol.
	fmt.Println("\n== batch perplexity IDS (5-fold CV + Jenks) ==")
	fmt.Print(rad.RenderTableI(rad.TableIPerplexityIDS(ds, rad.TableIConfig{})))

	// 2. Streaming detection: train on the benign runs, replay every run
	// through the online detector.
	fmt.Printf("\n== streaming perplexity IDS (order %d, window %d) ==\n", *order, *window)
	var benign [][]string
	for i, seq := range seqs {
		if !anomalous[i] {
			benign = append(benign, seq)
		}
	}
	det, err := rad.TrainPerplexityDetector(benign, *order)
	if err != nil {
		return err
	}
	fmt.Printf("threshold: %.3f\n", det.Threshold())
	var conf rad.Confusion
	for i, seq := range seqs {
		stream := det.NewStream(*window)
		alerted := false
		alertAt := -1
		for pos, cmd := range seq {
			if _, alert := stream.Observe(cmd); alert && !alerted {
				alerted = true
				alertAt = pos
			}
		}
		switch {
		case alerted && anomalous[i]:
			conf.TP++
			fmt.Printf("  run %2d: ALERT at command %d/%d (true anomaly)\n", i, alertAt+1, len(seq))
		case alerted:
			conf.FP++
			fmt.Printf("  run %2d: alert at command %d/%d (false positive)\n", i, alertAt+1, len(seq))
		case anomalous[i]:
			conf.FN++
			fmt.Printf("  run %2d: MISSED anomaly\n", i)
		default:
			conf.TN++
		}
	}
	fmt.Printf("streaming: recall %.2f, precision %.2f, accuracy %.0f%%\n",
		conf.Recall(), conf.Precision(), conf.Accuracy()*100)

	// 3. Procedure identification (RQ1): leave-one-out nearest-centroid.
	fmt.Println("\n== TF-IDF procedure classifier (leave-one-out) ==")
	correct := 0
	for i := range seqs {
		var trainSeqs [][]string
		var trainLabels []string
		for j := range seqs {
			if j == i {
				continue
			}
			trainSeqs = append(trainSeqs, seqs[j])
			trainLabels = append(trainLabels, ds.Runs[j].Procedure)
		}
		clf, err := rad.TrainProcedureClassifier(trainSeqs, trainLabels)
		if err != nil {
			return err
		}
		got, sim := clf.Classify(seqs[i])
		ok := got == ds.Runs[i].Procedure
		if ok {
			correct++
		} else {
			fmt.Printf("  run %2d (%s): classified %s (sim %.2f) — %s\n",
				i, ds.Runs[i].Procedure, got, sim, ds.Runs[i].Note)
		}
	}
	fmt.Printf("procedure identification: %d/%d correct\n", correct, len(seqs))

	// 4. Rule engine over the whole campaign.
	fmt.Println("\n== middlebox rule engine ==")
	engine := rad.NewRuleEngine(0)
	byRule := make(map[string]int)
	for _, rec := range ds.Store.All() {
		for _, v := range engine.Check(rec) {
			byRule[v.Rule]++
		}
	}
	if len(byRule) == 0 {
		fmt.Println("  no violations (the campaign stays inside the restricted command set)")
	}
	for rule, n := range byRule {
		fmt.Printf("  %-22s %d\n", rule, n)
	}

	// 5. Auto-labelling the unsupervised bulk (§VII: "automatically generate
	// labels"): segment the unknown-procedure stream into sessions and
	// classify each against the supervised fingerprints.
	fmt.Println("\n== auto-labelling the unknown-procedure bulk ==")
	labels := make([]string, len(ds.Runs))
	for i, run := range ds.Runs {
		labels[i] = run.Procedure
	}
	labeler, err := rad.NewAutoLabeler(seqs, labels)
	if err != nil {
		return err
	}
	unknown := ds.Store.ByProcedure(rad.UnknownProcedure)
	segments := labeler.Label(unknown)
	byLabel := make(map[string]int)
	commands := make(map[string]int)
	for _, seg := range segments {
		byLabel[seg.Label]++
		commands[seg.Label] += len(seg.Records)
	}
	fmt.Printf("%d unknown-procedure records segmented into %d sessions:\n", len(unknown), len(segments))
	for label, n := range byLabel {
		fmt.Printf("  %-20s %4d sessions %7d commands\n", label, n, commands[label])
	}

	// 6. Attack benchmark: the generated-anomaly suite (§VII) against the
	// name-only and argument-aware detectors.
	fmt.Println("\n== attack benchmark ==")
	bench, err := rad.AttackBenchmark(*seed, *order)
	if err != nil {
		return err
	}
	fmt.Print(rad.RenderAttackBench(bench))

	// 7. Specification mining (§V's second use case): recover the loop
	// structure of the crystal-solubility runs and synthesize a plausible
	// continuation from the learned command language (program synthesis).
	fmt.Println("\n== specification mining (P3 runs) ==")
	var p3Specs []rad.Spec
	var p3Seqs [][]string
	for i, run := range ds.Runs {
		if run.Procedure == rad.ProcedureP3 && !run.Anomalous {
			p3Specs = append(p3Specs, rad.MineSpec(seqs[i], rad.SpecOptions{}))
			p3Seqs = append(p3Seqs, seqs[i])
		}
	}
	blocks := rad.TopSpecBlocks(p3Seqs, rad.SpecOptions{}, 5)
	fmt.Println("most-covering repeated blocks across benign P3 runs:")
	for _, b := range blocks {
		fmt.Printf("  ×%-4d { %s }\n", b.Min, joinWords(b.Block))
	}
	if merged, ok := rad.MergeSpecs(p3Specs); ok {
		fmt.Printf("runs share one structure; merged spec has %d elements\n", len(merged))
	} else {
		fmt.Println("runs differ structurally (loop counts vary per solid); per-run specs mined")
	}
	if len(p3Seqs) > 0 {
		cov := rad.SpecCoverage(p3Seqs[0], p3Specs[0])
		fmt.Printf("loop coverage of first P3 run: %.0f%%\n", cov*100)
	}
	fmt.Println("\n== program synthesis (trigram LM) ==")
	lm := rad.TrainNGram(seqs, 3, 0.1)
	synth := lm.MostLikely([]string{"__init__", "HOME"}, 12)
	fmt.Printf("most likely continuation of [__init__ HOME]: %s\n", joinWords(synth[2:]))
	return nil
}

func joinWords(xs []string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += " "
		}
		out += x
	}
	return out
}
