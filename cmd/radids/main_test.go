package main

import "testing"

// TestRadidsEndToEnd drives the whole IDS report at a small scale: batch
// Table I, streaming detection, RQ1 classification, rule engine,
// auto-labelling, attack benchmark, and specification mining.
func TestRadidsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a dataset and runs the attack suite")
	}
	if err := run([]string{"-scale", "0.02", "-seed", "11"}); err != nil {
		t.Fatal(err)
	}
}

func TestRadidsRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag accepted")
	}
}
