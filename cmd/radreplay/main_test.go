package main

import (
	"os"
	"path/filepath"
	"testing"

	"rad"
)

// TestReplayEndToEnd generates a small trace, writes it to JSONL, and
// replays the C9 portion against a fresh loopback middlebox.
func TestReplayEndToEnd(t *testing.T) {
	lab, err := rad.NewVirtualLab(rad.VirtualLabConfig{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	rad.RunJoystick(lab.Lab, rad.ProcedureOptions{Run: "j", Seed: 3}, 6)
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := rad.NewJSONLWriter(f)
	for _, r := range lab.Sink.All() {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	_ = lab.Close()

	if err := run([]string{"-trace", path, "-device", "C9", "-limit", "15", "-network", "none"}); err != nil {
		t.Fatalf("replay: %v", err)
	}
}

// TestReplayFromTraceDB persists a small trace into a tracedb directory and
// replays it from there — the persisted-campaign round trip.
func TestReplayFromTraceDB(t *testing.T) {
	lab, err := rad.NewVirtualLab(rad.VirtualLabConfig{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	rad.RunJoystick(lab.Lab, rad.ProcedureOptions{Run: "j", Seed: 3}, 6)
	dir := filepath.Join(t.TempDir(), "tracedb")
	db, err := rad.OpenTraceDB(dir, rad.TraceDBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AppendBatch(lab.Sink.All()); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	_ = lab.Close()

	if err := run([]string{"-store", dir, "-device", "C9", "-limit", "15", "-network", "none"}); err != nil {
		t.Fatalf("replay from tracedb: %v", err)
	}
}

func TestReplayRequiresTrace(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -trace accepted")
	}
	if err := run([]string{"-trace", "x.jsonl", "-store", "d"}); err == nil {
		t.Error("both -trace and -store accepted")
	}
}

func TestReplayRejectsEmptyFilterResult(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-trace", path}); err == nil {
		t.Error("empty trace accepted")
	}
}
