// Command radreplay re-executes a recorded trace against a live middlebox
// and reports response-time statistics — the paper's footnote 1 made
// literal: "we … replayed the DIRECT mode joystick traces by emulating N9
// commands in the cloud server", which is how the Fig. 4 CLOUD numbers were
// produced.
//
// Usage:
//
//	radreplay -trace FILE.jsonl | -store DIR [-middlebox ADDR] [-proto auto|v1|v2] [-device NAME] [-run LABEL] [-limit N]
//
// The replay source is either a JSONL export (-trace) or a persistent
// tracedb directory (-store), so a campaign persisted by radgen or a live
// middlebox round-trips through the middlebox without an intermediate
// export. Device/run filters are pushed down into the store's indexed scan.
//
// With no -middlebox, radreplay spins up an in-process middlebox over
// loopback TCP with the requested network profile (-network lan|cloud|none),
// so a trace can be replayed against an emulated cloud deployment in one
// command.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rad"
	"rad/internal/device"
	"rad/internal/device/c9"
	"rad/internal/device/ika"
	"rad/internal/device/quantos"
	"rad/internal/device/tecan"
	"rad/internal/device/ur3e"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "radreplay:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("radreplay", flag.ContinueOnError)
	tracePath := fs.String("trace", "", "JSONL trace to replay")
	storeDir := fs.String("store", "", "tracedb directory to replay from (alternative to -trace)")
	mbAddr := fs.String("middlebox", "", "middlebox address (empty = spin one up locally)")
	network := fs.String("network", "cloud", "emulated network for the local middlebox: lan, cloud, none")
	devFilter := fs.String("device", "", "replay only this device's commands")
	runFilter := fs.String("run", "", "replay only this run's commands")
	limit := fs.Int("limit", 0, "replay at most N commands (0 = all)")
	protoFlag := fs.String("proto", "auto", "wire protocol to the middlebox: auto (try v2 binary, fall back to v1 JSON), v1, or v2")
	if err := fs.Parse(args); err != nil {
		return err
	}
	proto, err := rad.ParseWireProto(*protoFlag)
	if err != nil {
		return err
	}
	if (*tracePath == "") == (*storeDir == "") {
		return fmt.Errorf("exactly one of -trace or -store is required")
	}

	// Filter and bound the replay set. The tracedb path pushes the filters
	// into the store's indexed scan; the JSONL path filters in memory.
	var replaySet []rad.TraceRecord
	total := 0
	if *storeDir != "" {
		db, err := rad.OpenTraceDB(*storeDir, rad.TraceDBOptions{})
		if err != nil {
			return err
		}
		total = db.Len()
		it := db.Scan(rad.TraceQuery{Device: *devFilter, Run: *runFilter})
		for it.Next() {
			replaySet = append(replaySet, it.Record())
			if *limit > 0 && len(replaySet) >= *limit {
				break
			}
		}
		err = it.Err()
		if cerr := db.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	} else {
		f, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		records, err := rad.ReadTraceJSONL(f)
		_ = f.Close()
		if err != nil {
			return err
		}
		total = len(records)
		for _, r := range records {
			if *devFilter != "" && r.Device != *devFilter {
				continue
			}
			if *runFilter != "" && r.Run != *runFilter {
				continue
			}
			replaySet = append(replaySet, r)
			if *limit > 0 && len(replaySet) >= *limit {
				break
			}
		}
	}
	if len(replaySet) == 0 {
		return fmt.Errorf("no records match the filters (trace has %d records)", total)
	}

	addr := *mbAddr
	if addr == "" {
		var profile rad.NetworkProfile
		switch *network {
		case "lan":
			profile = rad.LANProfile()
		case "cloud":
			profile = rad.CloudProfile()
		case "none":
		default:
			return fmt.Errorf("unknown network %q", *network)
		}
		clock := rad.RealClock{}
		core := rad.NewMiddlebox(clock, nil)
		core.Register(c9.New(device.NewEnv(clock, 1)))
		core.Register(ur3e.New(device.NewEnv(clock, 2), nil))
		core.Register(ika.New(device.NewEnv(clock, 3)))
		core.Register(tecan.New(device.NewEnv(clock, 4)))
		core.Register(quantos.New(device.NewEnv(clock, 5)))
		srv := rad.NewMiddleboxServer(core, profile, 1)
		bound, err := srv.Start("127.0.0.1:0")
		if err != nil {
			return err
		}
		addr = bound
		defer srv.Close()
		fmt.Printf("local middlebox on %s (network=%s)\n", addr, *network)
	}

	transport, err := rad.DialMiddleboxProto(addr, proto)
	if err != nil {
		return err
	}
	fmt.Printf("wire protocol: %s\n", transport.Protocol())
	sess := rad.NewTracingSession(transport, rad.RealClock{}, rad.TracingConfig{
		DefaultMode: rad.ModeRemote, Procedure: "replay",
	})
	defer sess.Close()

	devs := make(map[string]rad.Device)
	latencies := make([]float64, 0, len(replaySet))
	inited := make(map[string]bool)
	errsSeen := 0
	for _, rec := range replaySet {
		dev, ok := devs[rec.Device]
		if !ok {
			dev, err = sess.Virtual(rec.Device)
			if err != nil {
				return err
			}
			devs[rec.Device] = dev
		}
		// Replays start from a cold device: inject an init if the trace
		// slice does not begin with one.
		if rec.Name != device.Init && !inited[rec.Device] {
			if _, err := dev.Exec(rad.Command{Name: device.Init}); err != nil {
				return fmt.Errorf("init %s: %w", rec.Device, err)
			}
			inited[rec.Device] = true
		}
		if rec.Name == device.Init {
			inited[rec.Device] = true
		}
		start := time.Now()
		_, execErr := dev.Exec(rad.Command{Name: rec.Name, Args: rec.Args})
		latencies = append(latencies, float64(time.Since(start).Microseconds())/1000)
		if execErr != nil {
			// Device-state divergence during replay is expected (the
			// original run's context is gone); count and continue.
			errsSeen++
		}
	}

	box := rad.BoxStats(latencies)
	fmt.Printf("replayed %d commands (%d device errors from state divergence)\n", len(replaySet), errsSeen)
	fmt.Printf("response time (ms): min %.2f  Q1 %.2f  median %.2f  Q3 %.2f  max %.2f  mean %.2f  outliers %d\n",
		box.Min, box.Q1, box.Med, box.Q3, box.Max, box.Mean, len(box.Outliers))
	return nil
}
