// Command radfleet drives a multi-tenant fleet campaign: hundreds of
// independent lab middleboxes multiplexed behind one router, each lab on
// its own virtual clock with its own deterministic seed, all executing
// concurrently in one process.
//
// Usage:
//
//	radfleet [-tenants N] [-requests N] [-seed N] [-faults] [-dlq DIR] [-per-tenant] [-verify]
//
// With -faults (the default) every lab runs under the chaos fault profile
// with a flaky trace sink spilling to a per-tenant dead-letter queue; after
// the storm each lab is healed and its dead letters drained back, so the
// campaign must end with zero lost records — radfleet exits nonzero
// otherwise. -verify reruns the whole campaign and compares every tenant's
// record digest against the first run, checking the per-seed
// byte-reproducibility guarantee end to end.
//
// SIGINT/SIGTERM stops the storm gracefully: every lab still heals,
// drains its dead letters back, and digests, so even a partial campaign
// ends with its records accounted for.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"rad"
)

func main() {
	stop := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		close(stop)
	}()
	if err := run(os.Args[1:], os.Stdout, stop); err != nil {
		fmt.Fprintln(os.Stderr, "radfleet:", err)
		os.Exit(1)
	}
}

// run drives the campaign; closing stop (main wires it to SIGINT/SIGTERM)
// stops the storm gracefully — every tenant still heals, drains its dead
// letters, and digests, so the partial campaign ends accountable.
func run(args []string, out io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("radfleet", flag.ContinueOnError)
	tenants := fs.Int("tenants", 64, "concurrent lab instances")
	requests := fs.Int("requests", 100, "commands per tenant after device init")
	seed := fs.Uint64("seed", 1, "campaign seed; each tenant's seed derives from it and the tenant's ID")
	faults := fs.Bool("faults", true, "run every lab under the chaos fault profile with per-tenant dead-letter failover")
	dlqRoot := fs.String("dlq", "", "root directory for per-tenant dead-letter queues (default: a temp dir, removed on exit)")
	perTenant := fs.Bool("per-tenant", false, "print one summary line per tenant")
	verify := fs.Bool("verify", false, "rerun the campaign and check every tenant's digest is byte-identical")
	if err := fs.Parse(args); err != nil {
		return err
	}

	root := *dlqRoot
	if root == "" && *faults {
		tmp, err := os.MkdirTemp("", "radfleet-dlq-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		root = tmp
	}

	// Each run gets its own DLQ namespace so a -verify rerun cannot drain
	// the first run's leftovers.
	runOnce := func(n int) (*rad.FleetCampaignResult, time.Duration, error) {
		cfg := rad.FleetCampaignConfig{
			Tenants:  *tenants,
			Requests: *requests,
			Seed:     *seed,
			Faults:   *faults,
		}
		if *faults {
			cfg.DLQRoot = filepath.Join(root, fmt.Sprintf("run-%d", n))
		}
		c, err := rad.NewFleetCampaign(cfg)
		if err != nil {
			return nil, 0, err
		}
		finished := make(chan struct{})
		go func() {
			select {
			case <-stop:
				c.Stop()
			case <-finished:
			}
		}()
		start := time.Now()
		res, err := c.Run()
		close(finished)
		return res, time.Since(start), err
	}

	res, elapsed, err := runOnce(1)
	if err != nil {
		return err
	}

	var spilled, drained uint64
	var stopped int
	for _, tr := range res.Tenants {
		spilled += tr.Spilled
		drained += tr.Drained
		if tr.Stopped {
			stopped++
		}
	}
	fmt.Fprintf(out, "fleet campaign: %d tenants x %d requests (seed %d, faults=%t) in %v\n",
		*tenants, *requests, *seed, *faults, elapsed.Round(time.Millisecond))
	if stopped > 0 {
		fmt.Fprintf(out, "  interrupted: %d tenants stopped mid-storm; every lab still healed, drained, and digested (partial campaign)\n", stopped)
	}
	fmt.Fprintf(out, "  routed %d requests, rejected %d; %d records stored, %d lost\n",
		res.Fleet.Routed, res.Fleet.Rejected, res.Records, res.Lost)
	if *faults {
		fmt.Fprintf(out, "  dead letters: %d records spilled through per-tenant queues, %d drained back\n",
			spilled, drained)
	}
	if *perTenant {
		for _, tr := range res.Tenants {
			fmt.Fprintf(out, "  %-10s %4d requests, %4d records, %3d spilled, lost %d, digest %s\n",
				tr.ID, tr.Requests, tr.Records, tr.Spilled, tr.Lost, tr.Digest[:12])
		}
	}

	if *verify && stopped > 0 {
		fmt.Fprintln(out, "  verify: skipped — an interrupted campaign's digests are not comparable to a full rerun")
	} else if *verify {
		res2, elapsed2, err := runOnce(2)
		if err != nil {
			return err
		}
		if len(res2.Tenants) != len(res.Tenants) {
			return fmt.Errorf("verify: rerun produced %d tenants, want %d", len(res2.Tenants), len(res.Tenants))
		}
		for i, tr := range res.Tenants {
			if got := res2.Tenants[i]; got.Digest != tr.Digest {
				return fmt.Errorf("verify: tenant %s digest changed across reruns:\n  %s\n  %s",
					tr.ID, tr.Digest, got.Digest)
			}
		}
		fmt.Fprintf(out, "  verify: rerun in %v, all %d tenant digests byte-identical\n",
			elapsed2.Round(time.Millisecond), len(res.Tenants))
	}

	if res.Lost > 0 {
		return fmt.Errorf("%d records lost across the fleet", res.Lost)
	}
	return nil
}
