package main

import (
	"regexp"
	"strings"
	"testing"
)

// TestRadFleetCampaign runs a small faulted campaign with -verify and
// -per-tenant: it must report zero loss, matched digests, and one line per
// tenant.
func TestRadFleetCampaign(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-tenants", "6", "-requests", "30", "-seed", "42",
		"-dlq", t.TempDir(), "-per-tenant", "-verify",
	}, &out, nil)
	if err != nil {
		t.Fatalf("campaign failed: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "6 tenants x 30 requests (seed 42, faults=true)") {
		t.Fatalf("missing campaign header in:\n%s", text)
	}
	if !strings.Contains(text, "0 lost") {
		t.Fatalf("campaign lost records:\n%s", text)
	}
	if !strings.Contains(text, "all 6 tenant digests byte-identical") {
		t.Fatalf("verify line missing in:\n%s", text)
	}
	for _, id := range []string{"lab-0000", "lab-0005"} {
		if !strings.Contains(text, id) {
			t.Fatalf("per-tenant line for %s missing in:\n%s", id, text)
		}
	}
	// The chaos profile must actually have exercised the failover path.
	m := regexp.MustCompile(`dead letters: (\d+) records spilled`).FindStringSubmatch(text)
	if m == nil || m[1] == "0" {
		t.Fatalf("no dead-letter activity reported in:\n%s", text)
	}
}

// TestRadFleetNoFaults runs the clean-path campaign (no DLQ, no chaos).
func TestRadFleetNoFaults(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-tenants", "3", "-requests", "10", "-faults=false"}, &out, nil); err != nil {
		t.Fatalf("clean campaign failed: %v\n%s", err, out.String())
	}
	if strings.Contains(out.String(), "dead letters") {
		t.Fatalf("clean campaign reported dead letters:\n%s", out.String())
	}
}

func TestRadFleetBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-tenants", "not-a-number"}, &out, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
}
