module rad

go 1.22
