package rad_test

// The kitchen-sink integration test: every layer of the reproduction in one
// scenario, driven through the public API only.
//
// A virtual lab runs with its serially attached instruments behind emulated
// serial stacks and power telemetry on. A man-in-the-middle speed attack
// multiplies the UR3e's commanded velocities by 4. The tampered command
// exceeds the arm's safety limit, so the safety system latches a protective
// stop; the failure is traced as an exception; the middlebox rule engine
// flags the actuation fault; and the streaming perplexity IDS — trained on
// benign runs — alerts on the disrupted command stream.

import (
	"errors"
	"testing"

	"rad"
	"rad/internal/procedure"
)

func TestIntegrationSpeedAttackTripsEveryDefense(t *testing.T) {
	// Phase 1 — train the streaming IDS on benign serial-lab P2 runs.
	var trainingSeqs [][]string
	for i := 0; i < 6; i++ {
		lab, err := rad.NewVirtualLab(rad.VirtualLabConfig{
			Seed: uint64(100 + i), SerialDevices: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		res := rad.RunSolubilityN9UR(lab.Lab, rad.ProcedureOptions{
			Run: "train", Seed: uint64(500 + i), Vials: 1 + i%3,
			Solid: []string{"NABH4", "CSTI", "GENTISTIC"}[i%3],
		})
		if res.Err != nil {
			t.Fatalf("training run %d: %v", i, res.Err)
		}
		trainingSeqs = append(trainingSeqs, lab.Sink.CommandSequence(nil))
		if err := lab.Close(); err != nil {
			t.Fatal(err)
		}
	}
	det, err := rad.TrainPerplexityDetector(trainingSeqs, 3)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 2 — the attacked run: serial stacks + power + MITM interceptor.
	var interceptor *rad.Interceptor
	lab, err := rad.NewVirtualLab(rad.VirtualLabConfig{
		Seed: 42, SerialDevices: true, WithPower: true,
		WrapTransport: func(next rad.Transport) rad.Transport {
			interceptor = rad.NewInterceptor(next, rad.AttackConfig{
				Kind: rad.AttackSpeedTamper, StartAfter: 15, Factor: 4, Seed: 7,
			})
			return interceptor
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()

	res := rad.RunSolubilityN9UR(lab.Lab, rad.ProcedureOptions{Run: "victim", Seed: 900})
	// ×4 on a 200 mm/s move commands 800 mm/s: the safety system refuses it
	// and the script sees the failure.
	if res.Err == nil {
		t.Fatal("the speed attack should have disrupted the run")
	}
	if !errors.Is(res.Err, procedure.Stopped) && res.Err.Error() == "" {
		t.Fatalf("unexpected termination: %v", res.Err)
	}
	if len(interceptor.Events()) == 0 {
		t.Fatal("the interceptor never tampered")
	}

	// Phase 3 — the defenses all saw it.
	recs := lab.Sink.ByRun("victim")
	if len(recs) == 0 {
		t.Fatal("no trace records")
	}
	// (a) The protective stop is in the trace as an exception.
	stopTraced := false
	for _, r := range recs {
		if r.Exception != "" && r.Device == rad.DeviceUR3e {
			stopTraced = true
		}
	}
	if !stopTraced {
		t.Error("protective stop not traced as a UR3e exception")
	}
	// (b) The rule engine flags the actuation fault.
	engine := rad.NewRuleEngine(0)
	faults := 0
	for _, r := range recs {
		for _, v := range engine.Check(r) {
			if v.Rule == "actuation-fault" {
				faults++
			}
		}
	}
	if faults == 0 {
		t.Error("rule engine missed the actuation fault")
	}
	// (c) The full-run perplexity is anomalous against benign training.
	seq := lab.Sink.CommandSequence(nil)
	if !det.Anomalous(seq) {
		t.Errorf("perplexity IDS missed the disrupted run (score %.3f, threshold %.3f)",
			det.Score(seq), det.Threshold())
	}
}
