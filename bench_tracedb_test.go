package rad_test

// Benchmarks for the persistent trace store: ingest throughput through the
// Batcher flush boundary, and the payoff of the per-segment posting lists —
// an indexed per-command-type scan against a full-segment scan over the
// same campaign. Run:
//
//	go test -bench=BenchmarkTraceDB -benchmem

import (
	"testing"

	"rad"
)

// BenchmarkTraceDBAppend measures batched ingest: one AppendBatch (= one
// on-disk block) of 256 records per iteration.
func BenchmarkTraceDBAppend(b *testing.B) {
	ds := benchDataset(b)
	recs := ds.Store.All()
	const batch = 256
	if len(recs) < batch {
		b.Fatalf("campaign too small: %d records", len(recs))
	}
	db, err := rad.OpenTraceDB(b.TempDir(), rad.TraceDBOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.AppendBatch(recs[(i*batch)%(len(recs)-batch) : (i*batch)%(len(recs)-batch)+batch]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(batch, "records/op")
}

// BenchmarkTraceDBScanIndexed compares an indexed scan (posting lists prune
// non-matching blocks before any disk read) against a full scan that decodes
// the whole campaign and filters in memory — same result set, same store.
func BenchmarkTraceDBScanIndexed(b *testing.B) {
	ds := benchDataset(b)
	recs := ds.Store.All()
	db, err := rad.OpenTraceDB(b.TempDir(), rad.TraceDBOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	bt := rad.NewTraceBatcher(db, 512)
	for _, r := range recs {
		if err := bt.Append(r); err != nil {
			b.Fatal(err)
		}
	}
	if err := bt.Flush(); err != nil {
		b.Fatal(err)
	}

	// A rare command type: present, but confined to few blocks.
	const key = "Quantos.start_dosing"
	q := rad.TraceQuery{Key: key}
	want := 0
	for _, r := range recs {
		if r.Key() == key {
			want++
		}
	}
	if want == 0 {
		b.Fatalf("campaign has no %s records", key)
	}

	b.Run("Indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			got, err := db.Collect(q)
			if err != nil {
				b.Fatal(err)
			}
			if len(got) != want {
				b.Fatalf("indexed scan found %d records, want %d", len(got), want)
			}
		}
	})
	b.Run("FullScan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := 0
			it := db.Scan(rad.TraceQuery{}) // every block read and decoded
			for it.Next() {
				if it.Record().Key() == key {
					n++
				}
			}
			if err := it.Err(); err != nil {
				b.Fatal(err)
			}
			if n != want {
				b.Fatalf("full scan found %d records, want %d", n, want)
			}
		}
	})
}
