package rad_test

// Benchmarks for the persistent trace store: ingest throughput through the
// Batcher flush boundary, and the payoff of the per-segment posting lists —
// an indexed per-command-type scan against a full-segment scan over the
// same campaign. Run:
//
//	go test -bench=BenchmarkTraceDB -benchmem

import (
	"testing"

	"rad"
)

// BenchmarkTraceDBAppend measures batched ingest: one AppendBatch (= one
// on-disk block) of 256 records per iteration.
func BenchmarkTraceDBAppend(b *testing.B) {
	ds := benchDataset(b)
	recs := ds.Store.All()
	const batch = 256
	if len(recs) < batch {
		b.Fatalf("campaign too small: %d records", len(recs))
	}
	db, err := rad.OpenTraceDB(b.TempDir(), rad.TraceDBOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.AppendBatch(recs[(i*batch)%(len(recs)-batch) : (i*batch)%(len(recs)-batch)+batch]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(batch, "records/op")
}

// BenchmarkTraceDBScanIndexed compares an indexed scan (posting lists prune
// non-matching blocks before any disk read) against a full scan that decodes
// the whole campaign and filters in memory — same result set, same store.
func BenchmarkTraceDBScanIndexed(b *testing.B) {
	ds := benchDataset(b)
	recs := ds.Store.All()
	db, err := rad.OpenTraceDB(b.TempDir(), rad.TraceDBOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	bt := rad.NewTraceBatcher(db, 512)
	for _, r := range recs {
		if err := bt.Append(r); err != nil {
			b.Fatal(err)
		}
	}
	if err := bt.Flush(); err != nil {
		b.Fatal(err)
	}

	// A rare command type: present, but confined to few blocks.
	const key = "Quantos.start_dosing"
	q := rad.TraceQuery{Key: key}
	want := 0
	for _, r := range recs {
		if r.Key() == key {
			want++
		}
	}
	if want == 0 {
		b.Fatalf("campaign has no %s records", key)
	}

	b.Run("Indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			got, err := db.Collect(q)
			if err != nil {
				b.Fatal(err)
			}
			if len(got) != want {
				b.Fatalf("indexed scan found %d records, want %d", len(got), want)
			}
		}
	})
	b.Run("FullScan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := 0
			it := db.Scan(rad.TraceQuery{}) // every block read and decoded
			for it.Next() {
				if it.Record().Key() == key {
					n++
				}
			}
			if err := it.Err(); err != nil {
				b.Fatal(err)
			}
			if n != want {
				b.Fatalf("full scan found %d records, want %d", n, want)
			}
		}
	})
}

// BenchmarkCompactedScanIndexed measures what the compactor buys a reader:
// the same campaign ingested through tiny flushes (every 4-record batch is
// one on-disk block — the fragmentation pattern of a chatty middlebox at a
// short flush interval) is queried before and after Compact. Scan-shaped
// reads — a full scan, and a time-window slice driven by the block time
// index — pay a header read, CRC check, allocation, and decode per block;
// the compacted store answers the same queries from dense 64KB blocks.
// (Ultra-selective point queries are the flip side: block granularity is
// the pruning unit, so BenchmarkTraceDBScanIndexed's rare-key shape favors
// fine-grained blocks — see DESIGN.md for the trade-off.)
func BenchmarkCompactedScanIndexed(b *testing.B) {
	ds := benchDataset(b)
	recs := ds.Store.All()
	lo, hi := recs[len(recs)*2/5].Time, recs[len(recs)*3/5].Time // middle fifth
	window := rad.TraceQuery{From: lo, To: hi}
	wantWindow := 0
	for _, r := range recs {
		if window.Match(r) {
			wantWindow++
		}
	}

	build := func(b *testing.B, compact bool) *rad.TraceDB {
		// Small write segments so the ingest seals several; only sealed
		// segments are compaction sources.
		db, err := rad.OpenTraceDB(b.TempDir(), rad.TraceDBOptions{SegmentBytes: 256 << 10})
		if err != nil {
			b.Fatal(err)
		}
		const flush = 4
		for i := 0; i < len(recs); i += flush {
			j := i + flush
			if j > len(recs) {
				j = len(recs)
			}
			if err := db.AppendBatch(recs[i:j]); err != nil {
				b.Fatal(err)
			}
		}
		if compact {
			stats, err := db.Compact()
			if err != nil {
				b.Fatal(err)
			}
			if stats.BlocksOut >= stats.BlocksIn {
				b.Fatalf("compaction did not merge: %+v", stats)
			}
		}
		return db
	}
	scans := func(db *rad.TraceDB) (full, windowed func(b *testing.B)) {
		full = func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				got, err := db.Collect(rad.TraceQuery{})
				if err != nil {
					b.Fatal(err)
				}
				if len(got) != len(recs) {
					b.Fatalf("full scan found %d records, want %d", len(got), len(recs))
				}
			}
		}
		windowed = func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				got, err := db.Collect(window)
				if err != nil {
					b.Fatal(err)
				}
				if len(got) != wantWindow {
					b.Fatalf("window scan found %d records, want %d", len(got), wantWindow)
				}
			}
		}
		return full, windowed
	}

	frag := build(b, false)
	defer frag.Close()
	dense := build(b, true)
	defer dense.Close()
	fragFull, fragWin := scans(frag)
	denseFull, denseWin := scans(dense)
	b.Run("FullScan/Fragmented", fragFull)
	b.Run("FullScan/Compacted", denseFull)
	b.Run("TimeWindow/Fragmented", fragWin)
	b.Run("TimeWindow/Compacted", denseWin)
}

// BenchmarkPlannerSelectivity isolates the query planner: the same
// two-filter query answered by the selectivity planner (shortest posting
// list drives, residual predicate pushed into the block scan, covered
// blocks skip it entirely) versus the naive reference — decode everything,
// filter per record. Planning itself (Explain) is benchmarked separately:
// it touches only index metadata and must stay microseconds-cheap.
func BenchmarkPlannerSelectivity(b *testing.B) {
	ds := benchDataset(b)
	recs := ds.Store.All()
	db, err := rad.OpenTraceDB(b.TempDir(), rad.TraceDBOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	bt := rad.NewTraceBatcher(db, 512)
	for _, r := range recs {
		if err := bt.Append(r); err != nil {
			b.Fatal(err)
		}
	}
	if err := bt.Flush(); err != nil {
		b.Fatal(err)
	}

	q := rad.TraceQuery{Device: "Quantos", Key: "Quantos.start_dosing"}
	want := 0
	for _, r := range recs {
		if r.Device == "Quantos" && r.Key() == "Quantos.start_dosing" {
			want++
		}
	}

	b.Run("Planned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			got, err := db.Collect(q)
			if err != nil {
				b.Fatal(err)
			}
			if len(got) != want {
				b.Fatalf("planned scan found %d records, want %d", len(got), want)
			}
		}
	})
	b.Run("Naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := 0
			it := db.Scan(rad.TraceQuery{})
			for it.Next() {
				r := it.Record()
				if r.Device == "Quantos" && r.Key() == "Quantos.start_dosing" {
					n++
				}
			}
			if err := it.Err(); err != nil {
				b.Fatal(err)
			}
			if n != want {
				b.Fatalf("naive scan found %d records, want %d", n, want)
			}
		}
	})
	b.Run("Explain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pl := db.Explain(q)
			if pl.CandidateBlocks == 0 {
				b.Fatal("planner found no candidate blocks")
			}
		}
	})
}
